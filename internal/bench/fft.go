package bench

import (
	"fmt"
	"math"
	"math/bits"
	"strings"
)

// FFT is an N-point decimation-in-time fast Fourier transform of complex
// numbers (the paper uses N = 32). A sequential data movement routine
// places the input vector in bit-flipped order; the threaded version
// executes all butterfly computations within a stage concurrently; the
// Ideal version unrolls the butterflies of every stage.
const fftN = 32

func bitrev(i, nbits int) int {
	r := 0
	for b := 0; b < nbits; b++ {
		r = (r << 1) | (i & 1)
		i >>= 1
	}
	return r
}

// fftInputs builds the deterministic input signal and twiddle tables.
func fftInputs(n int) (inre, inim, wr, wi []float64) {
	inre = make([]float64, n)
	inim = make([]float64, n)
	for i := 0; i < n; i++ {
		inre[i] = float64((i*7)%11)/4 - 1.0
		inim[i] = float64((i*3)%13) / 8
	}
	wr = make([]float64, n/2)
	wi = make([]float64, n/2)
	for j := 0; j < n/2; j++ {
		ang := -2 * math.Pi * float64(j) / float64(n)
		wr[j] = math.Cos(ang)
		wi[j] = math.Sin(ang)
	}
	return
}

// fftReference runs the transform in exactly the generated program's
// operation order.
func fftReference(n int, inre, inim, wr, wi []float64) (re, im []float64) {
	nbits := bits.Len(uint(n)) - 1
	re = make([]float64, n)
	im = make([]float64, n)
	for i := 0; i < n; i++ {
		re[i] = inre[bitrev(i, nbits)]
		im[i] = inim[bitrev(i, nbits)]
	}
	for length := 2; length <= n; length *= 2 {
		half := length / 2
		stride := n / length
		for b := 0; b < n/2; b++ {
			j := b % half
			k := (b / half) * length
			i0, i1 := k+j, k+j+half
			tw := j * stride
			x0r, x0i := re[i0], im[i0]
			x1r, x1i := re[i1], im[i1]
			tr := wr[tw]*x1r - wi[tw]*x1i
			ti := wr[tw]*x1i + wi[tw]*x1r
			re[i0] = x0r + tr
			im[i0] = x0i + ti
			re[i1] = x0r - tr
			im[i1] = x0i - ti
		}
	}
	return
}

// fftButterflyBody renders the butterfly statement for constants half,
// length, stride with the butterfly index variable named b.
func fftButterflyBody(half, length, stride int) string {
	return fmt.Sprintf(`
      (let ((j (%% b %d)) (k (* (/ b %d) %d)))
        (let ((i0 (+ k j)) (i1 (+ k j %d)) (tw (* j %d)))
          (let ((x0r (aref re i0)) (x0i (aref im i0))
                (x1r (aref re i1)) (x1i (aref im i1))
                (wr_ (aref Wr tw)) (wi_ (aref Wi tw)))
            (let ((tr (- (* wr_ x1r) (* wi_ x1i)))
                  (ti (+ (* wr_ x1i) (* wi_ x1r))))
              (aset re i0 (+ x0r tr))
              (aset im i0 (+ x0i ti))
              (aset re i1 (- x0r tr))
              (aset im i1 (- x0i ti))))))`,
		half, half, length, half, stride)
}

// fftReversalExpr renders the runtime bit-reversal of variable i for
// nbits bits: or-ing together each bit shifted to its mirrored position.
func fftReversalExpr(nbits int) string {
	terms := make([]string, nbits)
	for b := 0; b < nbits; b++ {
		mask := 1 << b
		shift := nbits - 1 - 2*b
		switch {
		case shift > 0:
			terms[b] = fmt.Sprintf("(shl (and i %d) %d)", mask, shift)
		case shift < 0:
			terms[b] = fmt.Sprintf("(shr (and i %d) %d)", mask, -shift)
		default:
			terms[b] = fmt.Sprintf("(and i %d)", mask)
		}
	}
	expr := terms[0]
	for _, t := range terms[1:] {
		expr = fmt.Sprintf("(or %s %s)", expr, t)
	}
	return expr
}

// GenFFT generates the FFT benchmark at the paper's size.
func GenFFT(kind SourceKind) (*Benchmark, error) { return GenFFTN(fftN, kind) }

// GenFFTN generates an N-point FFT benchmark; n must be a power of two
// of at least 4.
func GenFFTN(n int, kind SourceKind) (*Benchmark, error) {
	if n < 4 || n&(n-1) != 0 {
		return nil, fmt.Errorf("bench: fft size %d must be a power of two >= 4", n)
	}
	nbits := bits.Len(uint(n)) - 1
	inre, inim, wr, wi := fftInputs(n)
	wantRe, wantIm := fftReference(n, inre, inim, wr, wi)

	var src strings.Builder
	src.WriteString("(program fft\n")
	fmt.Fprintf(&src, "  (global inre (array float %d) %s)\n", n, floatInit(inre))
	fmt.Fprintf(&src, "  (global inim (array float %d) %s)\n", n, floatInit(inim))
	fmt.Fprintf(&src, "  (global Wr (array float %d) %s)\n", n/2, floatInit(wr))
	fmt.Fprintf(&src, "  (global Wi (array float %d) %s)\n", n/2, floatInit(wi))
	fmt.Fprintf(&src, "  (global re (array float %d))\n", n)
	fmt.Fprintf(&src, "  (global im (array float %d))\n", n)

	src.WriteString("  (def (main)\n")
	// Sequential data movement: place the input in bit-flipped order.
	// The bit reversal is computed at runtime (shift/mask/or), so this
	// section is serial integer work that only a wide single thread can
	// speed up — the paper's "sequential data movement routine". The
	// Ideal variant is fully static, so its permutation is unrolled with
	// the reversal precomputed.
	if kind == Ideal {
		for i := 0; i < n; i++ {
			fmt.Fprintf(&src, "    (aset re %d (aref inre %d))\n", i, bitrev(i, nbits))
			fmt.Fprintf(&src, "    (aset im %d (aref inim %d))\n", i, bitrev(i, nbits))
		}
	} else {
		for _, arr := range []struct{ dst, src string }{{"re", "inre"}, {"im", "inim"}} {
			fmt.Fprintf(&src, `    (for (i 0 %d)
      (let ((r %s))
        (aset %s i (aref %s r))))
`, n, fftReversalExpr(nbits), arr.dst, arr.src)
		}
	}
	for length := 2; length <= n; length *= 2 {
		half := length / 2
		stride := n / length
		body := fftButterflyBody(half, length, stride)
		switch kind {
		case Sequential:
			fmt.Fprintf(&src, "    (for (b 0 %d)%s)\n", n/2, body)
		case Threaded:
			// One thread per butterfly of the stage, receiving its
			// butterfly index at runtime; stages are separated by joins.
			fmt.Fprintf(&src, "    (forall (b 0 %d)%s)\n", n/2, body)
		case Ideal:
			fmt.Fprintf(&src, "    (unroll (b 0 %d)%s)\n", n/2, body)
		default:
			return nil, fmt.Errorf("bench: fft: unknown kind %v", kind)
		}
	}
	src.WriteString("))\n")

	return &Benchmark{
		Name:   "fft",
		Kind:   kind,
		Source: src.String(),
		Verify: func(peek Peek) error {
			for i := 0; i < n; i++ {
				if err := expectFloat(peek, "re", int64(i), wantRe[i]); err != nil {
					return err
				}
				if err := expectFloat(peek, "im", int64(i), wantIm[i]); err != nil {
					return err
				}
			}
			return nil
		},
	}, nil
}
