package bench

import (
	"fmt"
	"strings"
)

// ModelQ is the modified Model benchmark of the interference experiment
// (Table 3): four threads share a priority queue of devices to evaluate;
// each thread repeatedly takes a device index from the queue (with an
// atomic consume/produce update of the shared counter), evaluates it, and
// counts its own evaluations. The input circuit has identical devices,
// each at the same operating point (saturation), and all extraneous code
// is removed so that every operation in the source is executed — making
// the compile-time schedule directly comparable to runtime cycle counts.
//
// The Sequential kind is the similarly altered single-thread program (the
// STS comparison row of Table 3); Threaded is the four-worker queue
// version. There is no Ideal variant.
const (
	modelQDevices = 20
	modelQWorkers = 4
)

// modelQParams returns the identical-device operating point: NMOS in
// saturation (vgs = 2.0 > vt, vds = 5.0 >= vgs - vt).
func modelQParams() (k, vt, lam, vs, vg, vd float64) {
	return 0.0002, 0.7, 0.02, 0.0, 2.0, 5.0
}

// modelQReference mirrors the generated straight-line evaluation.
func modelQReference() float64 {
	k, vt, lam, vs, vg, vd := modelQParams()
	vgs := vg - vs
	vds := vd - vs
	return ((0.5 * k) * ((vgs - vt) * (vgs - vt))) * (1.0 + lam*vds)
}

// modelQEvalDef is the straight-line (branch-free) evaluation of one
// identical device at a fixed operating point.
const modelQEvalDef = `
  (def (evalq d)
    (let ((vd (aref V 1))
          (vg (aref V 2))
          (vs (aref V 0))
          (kp (aref P 0))
          (vt (aref P 1))
          (lam (aref P 2)))
      (let ((vgs (- vg vs)) (vds (- vd vs)))
        (aset Iout d (* (* (* 0.5 kp) (* (- vgs vt) (- vgs vt)))
                        (+ 1.0 (* lam vds)))))))`

// GenModelQ generates the ModelQ benchmark.
func GenModelQ(kind SourceKind) (*Benchmark, error) {
	k, vt, lam, vs, vg, vd := modelQParams()
	want := modelQReference()

	var src strings.Builder
	src.WriteString("(program modelq\n")
	fmt.Fprintf(&src, "  (global V (array float 3) %s)\n", floatInit([]float64{vs, vd, vg}))
	fmt.Fprintf(&src, "  (global P (array float 3) %s)\n", floatInit([]float64{k, vt, lam}))
	fmt.Fprintf(&src, "  (global Iout (array float %d))\n", modelQDevices)
	fmt.Fprintf(&src, "  (global nextd int (init 0))\n")
	fmt.Fprintf(&src, "  (global counts (array int %d))\n", modelQWorkers)
	src.WriteString(modelQEvalDef)

	switch kind {
	case Sequential:
		fmt.Fprintf(&src, `
  (def (main)
    (for (d 0 %d)
      (evalq d)))`, modelQDevices)
	case Threaded:
		fmt.Fprintf(&src, `
  (def (workerq tid)
    (set cnt 0)
    (set idx (aref nextd 0 consume))
    (aset nextd 0 (+ idx 1) produce)
    (while (< idx %d)
      (evalq idx)
      (set cnt (+ cnt 1))
      (set idx (aref nextd 0 consume))
      (aset nextd 0 (+ idx 1) produce))
    (aset counts tid cnt))
  (def (main)`, modelQDevices)
		for w := 0; w < modelQWorkers; w++ {
			fmt.Fprintf(&src, "\n    (fork (workerq %d))", w)
		}
		src.WriteString("\n    (join))")
	default:
		return nil, fmt.Errorf("bench: modelq: unknown kind %v", kind)
	}
	src.WriteString(")\n")

	return &Benchmark{
		Name:   "modelq",
		Kind:   kind,
		Source: src.String(),
		Verify: func(peek Peek) error {
			for i := 0; i < modelQDevices; i++ {
				if err := expectFloat(peek, "Iout", int64(i), want); err != nil {
					return err
				}
			}
			if kind == Threaded {
				total := int64(0)
				for w := 0; w < modelQWorkers; w++ {
					v, ok := peek("counts", int64(w))
					if !ok {
						return fmt.Errorf("bench: counts[%d] not found", w)
					}
					total += v.AsInt()
				}
				if total != modelQDevices {
					return fmt.Errorf("bench: workers evaluated %d devices, want %d", total, modelQDevices)
				}
			}
			return nil
		},
	}, nil
}
