package bench

import (
	"fmt"
	"strings"
)

// Matrix is an NxN matrix multiply of floating point numbers with the
// inner (k) loop unrolled completely, as in the paper (the paper uses
// N = 9). The threaded version executes all iterations of the outer (i)
// loop in parallel; the Ideal version has all loops unrolled.
const matrixN = 9

// matrixInputs builds deterministic input matrices.
func matrixInputs(n int) (a, b []float64) {
	a = make([]float64, n*n)
	b = make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			a[i*n+j] = float64((i*n+j)%7) + 0.5
			b[i*n+j] = float64((i*2+j*3)%5) - 1.25
		}
	}
	return a, b
}

// matrixReference computes the product in the same operation order as the
// generated program (k ascending, fused as s + a*b), so results compare
// bit-exactly.
func matrixReference(n int, a, b []float64) []float64 {
	c := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			s := 0.0
			for k := 0; k < n; k++ {
				s = s + a[i*n+k]*b[k*n+j]
			}
			c[i*n+j] = s
		}
	}
	return c
}

// GenMatrix generates the Matrix benchmark at the paper's size.
func GenMatrix(kind SourceKind) (*Benchmark, error) { return GenMatrixN(matrixN, kind) }

// GenMatrixN generates an NxN Matrix benchmark.
func GenMatrixN(n int, kind SourceKind) (*Benchmark, error) {
	if n < 1 {
		return nil, fmt.Errorf("bench: matrix size %d", n)
	}
	a, b := matrixInputs(n)
	want := matrixReference(n, a, b)

	// The (i,j) body with the k loop unrolled completely.
	body := fmt.Sprintf(`
      (let ((s 0.0))
        (unroll (k 0 %d)
          (set s (+ s (* (aref A (+ (* i %d) k)) (aref B (+ (* k %d) j))))))
        (aset C (+ (* i %d) j) s))`, n, n, n, n)

	var main string
	switch kind {
	case Sequential:
		main = fmt.Sprintf(`
  (def (main)
    (for (i 0 %d)
      (for (j 0 %d)%s)))`, n, n, body)
	case Threaded:
		main = fmt.Sprintf(`
  (def (main)
    (forall-static (i 0 %d)
      (for (j 0 %d)%s)))`, n, n, body)
	case Ideal:
		main = fmt.Sprintf(`
  (def (main)
    (unroll (i 0 %d)
      (unroll (j 0 %d)%s)))`, n, n, body)
	default:
		return nil, fmt.Errorf("bench: matrix: unknown kind %v", kind)
	}

	var src strings.Builder
	src.WriteString("(program matrix\n")
	fmt.Fprintf(&src, "  (global A (array float %d) %s)\n", n*n, floatInit(a))
	fmt.Fprintf(&src, "  (global B (array float %d) %s)\n", n*n, floatInit(b))
	fmt.Fprintf(&src, "  (global C (array float %d))\n", n*n)
	src.WriteString(main)
	src.WriteString(")\n")

	return &Benchmark{
		Name:   "matrix",
		Kind:   kind,
		Source: src.String(),
		Verify: func(peek Peek) error {
			for i, w := range want {
				if err := expectFloat(peek, "C", int64(i), w); err != nil {
					return err
				}
			}
			return nil
		},
	}, nil
}
