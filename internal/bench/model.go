package bench

import (
	"fmt"
	"strings"
)

// Model is a model evaluator from a VLSI circuit simulator: the change in
// current for each device in the network is computed from the previous
// node voltages. The input circuit is a 20-device CMOS operational
// amplifier (synthesized deterministically here — the paper's netlist is
// not published — with a Shichman-Hodges quadratic MOS model, preserving
// the benchmark's character: memory-dominated with little instruction-
// level parallelism and data-dependent region-selection branches). The
// threaded version creates a new thread to evaluate each device; there is
// no Ideal variant.
const (
	modelDevices = 20
	modelNodes   = 12
)

// mosDevice is one transistor of the synthetic netlist.
type mosDevice struct {
	typ        int64 // 0 = NMOS, 1 = PMOS
	d, g, s    int64
	k, vt, lam float64
}

// modelNetlist builds a synthetic netlist of nd devices over nn nodes
// (the default sizes give the paper's 20-device op-amp).
func modelNetlist(nd, nn int) ([]mosDevice, []float64) {
	devs := make([]mosDevice, nd)
	for i := range devs {
		devs[i] = mosDevice{
			typ: int64(i % 2),
			d:   int64((i*3 + 1) % nn),
			g:   int64((i*5 + 2) % nn),
			s:   int64((i * 7) % nn),
			k:   0.0001 * float64(1+i%5),
			vt:  0.7,
			lam: 0.02 + 0.005*float64(i%3),
		}
	}
	v := make([]float64, nn)
	for i := range v {
		v[i] = float64((i*5)%7) * 0.45
	}
	return devs, v
}

// modelEvalReference mirrors the generated evaluation code exactly.
func modelEvalReference(dev mosDevice, v []float64) float64 {
	vd, vg, vs := v[dev.d], v[dev.g], v[dev.s]
	var vgs, vds float64
	if dev.typ == 0 {
		vgs = vg - vs
		vds = vd - vs
	} else {
		vgs = vs - vg
		vds = vs - vd
	}
	cur := 0.0
	if vgs > dev.vt {
		if vds < vgs-dev.vt {
			cur = (dev.k * ((vgs-dev.vt)*vds - 0.5*(vds*vds))) * (1.0 + dev.lam*vds)
		} else {
			cur = ((0.5 * dev.k) * ((vgs - dev.vt) * (vgs - dev.vt))) * (1.0 + dev.lam*vds)
		}
	}
	if dev.typ == 1 {
		cur = -cur
	}
	return cur
}

// modelEvalDef is the device-evaluation procedure shared by the variants.
const modelEvalDef = `
  (def (evaldev d)
    (let ((ty (aref dtype d))
          (vd (aref V (aref dd d)))
          (vg (aref V (aref dg d)))
          (vs (aref V (aref ds d)))
          (kp (aref dk d))
          (vt (aref dvt d))
          (lam (aref dlam d)))
      (set vgs 0.0)
      (set vds 0.0)
      (if (= ty 0)
          (begin (set vgs (- vg vs)) (set vds (- vd vs)))
          (begin (set vgs (- vs vg)) (set vds (- vs vd))))
      (set cur 0.0)
      (if (> vgs vt)
          (if (< vds (- vgs vt))
              (set cur (* (* kp (- (* (- vgs vt) vds) (* 0.5 (* vds vds))))
                          (+ 1.0 (* lam vds))))
              (set cur (* (* (* 0.5 kp) (* (- vgs vt) (- vgs vt)))
                          (+ 1.0 (* lam vds))))))
      (if (= ty 1)
          (set cur (- cur)))
      (aset Iout d cur)))`

// modelGlobals renders the netlist data section.
func modelGlobals(devs []mosDevice, v []float64) string {
	typ := make([]int64, len(devs))
	dd := make([]int64, len(devs))
	dg := make([]int64, len(devs))
	ds := make([]int64, len(devs))
	dk := make([]float64, len(devs))
	dvt := make([]float64, len(devs))
	dlam := make([]float64, len(devs))
	for i, d := range devs {
		typ[i], dd[i], dg[i], ds[i] = d.typ, d.d, d.g, d.s
		dk[i], dvt[i], dlam[i] = d.k, d.vt, d.lam
	}
	var b strings.Builder
	n := len(devs)
	fmt.Fprintf(&b, "  (global dtype (array int %d) %s)\n", n, intInit(typ))
	fmt.Fprintf(&b, "  (global dd (array int %d) %s)\n", n, intInit(dd))
	fmt.Fprintf(&b, "  (global dg (array int %d) %s)\n", n, intInit(dg))
	fmt.Fprintf(&b, "  (global ds (array int %d) %s)\n", n, intInit(ds))
	fmt.Fprintf(&b, "  (global dk (array float %d) %s)\n", n, floatInit(dk))
	fmt.Fprintf(&b, "  (global dvt (array float %d) %s)\n", n, floatInit(dvt))
	fmt.Fprintf(&b, "  (global dlam (array float %d) %s)\n", n, floatInit(dlam))
	fmt.Fprintf(&b, "  (global V (array float %d) %s)\n", len(v), floatInit(v))
	fmt.Fprintf(&b, "  (global Iout (array float %d))\n", n)
	return b.String()
}

// GenModel generates the Model benchmark at the paper's size. There is
// no Ideal variant.
func GenModel(kind SourceKind) (*Benchmark, error) {
	return GenModelN(modelDevices, modelNodes, kind)
}

// GenModelN generates the Model benchmark with nd devices over nn nodes.
func GenModelN(nd, nn int, kind SourceKind) (*Benchmark, error) {
	if kind == Ideal {
		return nil, fmt.Errorf("bench: model has no ideal variant (data-dependent control flow)")
	}
	if nd < 1 || nn < 2 {
		return nil, fmt.Errorf("bench: model size %dx%d", nd, nn)
	}
	devs, v := modelNetlist(nd, nn)
	want := make([]float64, len(devs))
	for i, d := range devs {
		want[i] = modelEvalReference(d, v)
	}

	var main string
	switch kind {
	case Sequential:
		main = fmt.Sprintf(`
  (def (main)
    (for (d 0 %d)
      (evaldev d)))`, nd)
	case Threaded:
		main = fmt.Sprintf(`
  (def (main)
    (forall-static (d 0 %d)
      (evaldev d)))`, nd)
	default:
		return nil, fmt.Errorf("bench: model: unknown kind %v", kind)
	}

	var src strings.Builder
	src.WriteString("(program model\n")
	src.WriteString(modelGlobals(devs, v))
	src.WriteString(modelEvalDef)
	src.WriteString(main)
	src.WriteString(")\n")

	return &Benchmark{
		Name:   "model",
		Kind:   kind,
		Source: src.String(),
		Verify: func(peek Peek) error {
			for i, w := range want {
				if err := expectFloat(peek, "Iout", int64(i), w); err != nil {
					return err
				}
			}
			return nil
		},
	}, nil
}
