// Package bench provides the paper's four benchmark programs — Matrix,
// FFT, LUD, and Model (Section 4) — as generators of source code in the
// compiler's input language, together with exact reference results
// computed in Go for verifying simulated runs. A fifth program, ModelQ,
// is the modified Model benchmark of the interference experiment
// (Table 3).
//
// Each benchmark is generated in up to three source variants matching the
// paper's machine modes: a sequential variant (used for SEQ and STS), a
// threaded variant (TPE and Coupled), and — where statically schedulable —
// a fully unrolled Ideal variant.
package bench

import (
	"fmt"
	"strconv"
	"strings"

	"pcoup/internal/isa"
)

// SourceKind selects a benchmark's source variant.
type SourceKind int

const (
	// Sequential is the single-threaded program (SEQ and STS modes).
	Sequential SourceKind = iota
	// Threaded is the explicitly parallel program (TPE and Coupled).
	Threaded
	// Ideal is the fully unrolled, statically schedulable program.
	Ideal
)

func (k SourceKind) String() string {
	switch k {
	case Sequential:
		return "sequential"
	case Threaded:
		return "threaded"
	case Ideal:
		return "ideal"
	}
	return fmt.Sprintf("SourceKind(%d)", int(k))
}

// Peek reads one word of the simulated memory image by global name and
// element offset.
type Peek func(global string, off int64) (isa.Value, bool)

// Benchmark is one generated program plus its result checker.
type Benchmark struct {
	Name   string
	Kind   SourceKind
	Source string
	// Verify checks the final memory image against the Go reference
	// computation (bit-exact: the generated program evaluates in the
	// same operation order as the reference).
	Verify func(peek Peek) error
}

// Names lists the benchmark suite in the paper's order.
func Names() []string { return []string{"matrix", "fft", "model", "lud"} }

// HasIdeal reports whether the named benchmark has an Ideal variant (LUD
// and Model have data-dependent control flow and do not, as in the
// paper).
func HasIdeal(name string) bool { return name == "matrix" || name == "fft" }

// Get generates the named benchmark in the requested variant at the
// paper's problem size.
func Get(name string, kind SourceKind) (*Benchmark, error) {
	switch name {
	case "matrix":
		return GenMatrix(kind)
	case "fft":
		return GenFFT(kind)
	case "lud":
		return GenLUD(kind)
	case "model":
		return GenModel(kind)
	case "modelq":
		return GenModelQ(kind)
	}
	return nil, fmt.Errorf("bench: unknown benchmark %q", name)
}

// GetN generates the named benchmark at a chosen problem size. The size
// parameter means: matrix — N (NxN multiply); fft — transform points
// (power of two); lud — mesh side m (an m^2 x m^2 system); model —
// device count. ModelQ is fixed (it reproduces Table 3 exactly).
func GetN(name string, kind SourceKind, size int) (*Benchmark, error) {
	switch name {
	case "matrix":
		return GenMatrixN(size, kind)
	case "fft":
		return GenFFTN(size, kind)
	case "lud":
		return GenLUDMesh(size, kind)
	case "model":
		return GenModelN(size, modelNodes, kind)
	}
	return nil, fmt.Errorf("bench: unknown sized benchmark %q", name)
}

// --- source generation helpers ---

// fstr renders a float64 so the source reader recovers it exactly.
func fstr(f float64) string {
	s := strconv.FormatFloat(f, 'g', -1, 64)
	if !strings.ContainsAny(s, ".eE") {
		s += ".0"
	}
	return s
}

// floatInit renders an (init ...) clause for a float array.
func floatInit(vals []float64) string {
	var b strings.Builder
	b.WriteString("(init")
	for i, v := range vals {
		if i%8 == 0 {
			b.WriteString("\n    ")
		} else {
			b.WriteByte(' ')
		}
		b.WriteString(fstr(v))
	}
	b.WriteByte(')')
	return b.String()
}

// intInit renders an (init ...) clause for an int array.
func intInit(vals []int64) string {
	var b strings.Builder
	b.WriteString("(init")
	for i, v := range vals {
		if i%16 == 0 {
			b.WriteString("\n    ")
		} else {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%d", v)
	}
	b.WriteByte(')')
	return b.String()
}

// expectFloat compares one float result.
func expectFloat(peek Peek, global string, off int64, want float64) error {
	v, ok := peek(global, off)
	if !ok {
		return fmt.Errorf("bench: global %q offset %d not found", global, off)
	}
	if v.AsFloat() != want {
		return fmt.Errorf("bench: %s[%d] = %v, want %v", global, off, v.AsFloat(), want)
	}
	return nil
}

// expectInt compares one int result.
func expectInt(peek Peek, global string, off int64, want int64) error {
	v, ok := peek(global, off)
	if !ok {
		return fmt.Errorf("bench: global %q offset %d not found", global, off)
	}
	if v.AsInt() != want {
		return fmt.Errorf("bench: %s[%d] = %d, want %d", global, off, v.AsInt(), want)
	}
	return nil
}
