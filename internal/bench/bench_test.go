package bench

import (
	"math"
	"math/cmplx"
	"strings"
	"testing"

	"pcoup/internal/compiler"
	"pcoup/internal/isa"
	"pcoup/internal/machine"
	"pcoup/internal/sim"
)

func TestGeneratorsDeterministic(t *testing.T) {
	for _, name := range append(Names(), "modelq") {
		for _, kind := range []SourceKind{Sequential, Threaded, Ideal} {
			if kind == Ideal && !HasIdeal(name) {
				continue
			}
			if name == "modelq" && kind == Ideal {
				continue
			}
			a, err := Get(name, kind)
			if err != nil {
				t.Fatalf("%s/%v: %v", name, kind, err)
			}
			b, _ := Get(name, kind)
			if a.Source != b.Source {
				t.Errorf("%s/%v: generator not deterministic", name, kind)
			}
			if a.Name != name || a.Kind != kind {
				t.Errorf("%s/%v: metadata %q %v", name, kind, a.Name, a.Kind)
			}
		}
	}
}

func TestGetRejectsInvalid(t *testing.T) {
	if _, err := Get("nope", Sequential); err == nil {
		t.Error("unknown benchmark accepted")
	}
	if _, err := Get("lud", Ideal); err == nil {
		t.Error("lud ideal accepted")
	}
	if _, err := Get("model", Ideal); err == nil {
		t.Error("model ideal accepted")
	}
}

// TestMatrixReferenceIdentity: multiplying by the identity returns the
// input.
func TestMatrixReferenceIdentity(t *testing.T) {
	a, _ := matrixInputs(matrixN)
	id := make([]float64, matrixN*matrixN)
	for i := 0; i < matrixN; i++ {
		id[i*matrixN+i] = 1
	}
	c := matrixReference(matrixN, a, id)
	for i := range a {
		if c[i] != a[i] {
			t.Fatalf("A*I != A at %d: %v vs %v", i, c[i], a[i])
		}
	}
}

// TestFFTReferenceAgainstDFT: the fast transform must match a direct DFT.
func TestFFTReferenceAgainstDFT(t *testing.T) {
	inre, inim, wr, wi := fftInputs(fftN)
	re, im := fftReference(fftN, inre, inim, wr, wi)
	for k := 0; k < fftN; k++ {
		var want complex128
		for n := 0; n < fftN; n++ {
			w := cmplx.Exp(complex(0, -2*math.Pi*float64(k*n)/fftN))
			want += complex(inre[n], inim[n]) * w
		}
		got := complex(re[k], im[k])
		if cmplx.Abs(got-want) > 1e-9 {
			t.Errorf("bin %d: fft %v, dft %v", k, got, want)
		}
	}
}

// TestLUDReferenceReconstruction: L*U must reconstruct the input matrix.
func TestLUDReferenceReconstruction(t *testing.T) {
	a := ludInput(ludMesh)
	lu := ludReference(ludMesh, a)
	n := ludN
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			// (L*U)[i][j] with L unit-lower (diag 1) and U upper.
			sum := 0.0
			for k := 0; k <= i && k <= j; k++ {
				var l float64
				if k == i {
					l = 1
				} else {
					l = lu[i*n+k]
				}
				sum += l * lu[k*n+j]
				if k == j {
					break
				}
			}
			if math.Abs(sum-a[i*n+j]) > 1e-9 {
				t.Fatalf("LU reconstruction failed at (%d,%d): %v vs %v", i, j, sum, a[i*n+j])
			}
		}
	}
}

// ludReconstruct is exercised above; also check the band assumption: no
// nonzero appears outside the half-bandwidth.
func TestLUDBandPreserved(t *testing.T) {
	lu := ludReference(ludMesh, ludInput(ludMesh))
	for i := 0; i < ludN; i++ {
		for j := 0; j < ludN; j++ {
			d := i - j
			if d < 0 {
				d = -d
			}
			if d > ludBand && lu[i*ludN+j] != 0 {
				t.Fatalf("fill outside band at (%d,%d) = %v", i, j, lu[i*ludN+j])
			}
		}
	}
}

// TestModelRegions: the synthetic netlist must exercise all three device
// regions (cutoff, linear, saturation) so the benchmark keeps its
// data-dependent branches.
func TestModelRegions(t *testing.T) {
	devs, v := modelNetlist(modelDevices, modelNodes)
	regions := map[string]int{}
	for _, d := range devs {
		vd, vg, vs := v[d.d], v[d.g], v[d.s]
		var vgs, vds float64
		if d.typ == 0 {
			vgs, vds = vg-vs, vd-vs
		} else {
			vgs, vds = vs-vg, vs-vd
		}
		switch {
		case vgs <= d.vt:
			regions["cutoff"]++
		case vds < vgs-d.vt:
			regions["linear"]++
		default:
			regions["saturation"]++
		}
	}
	if len(regions) < 2 {
		t.Errorf("netlist exercises only %v", regions)
	}
}

func TestModelQOperatingPoint(t *testing.T) {
	k, vt, lam, vs, vg, vd := modelQParams()
	vgs, vds := vg-vs, vd-vs
	if vgs <= vt {
		t.Error("modelq device is in cutoff")
	}
	if vds < vgs-vt {
		t.Error("modelq device is not in saturation")
	}
	want := ((0.5 * k) * ((vgs - vt) * (vgs - vt))) * (1.0 + lam*vds)
	if got := modelQReference(); got != want {
		t.Errorf("reference = %v, want %v", got, want)
	}
}

// TestVerifyCatchesWrongResults: a Verify function must fail when memory
// holds the wrong values.
func TestVerifyCatchesWrongResults(t *testing.T) {
	b, err := Get("matrix", Sequential)
	if err != nil {
		t.Fatal(err)
	}
	err = b.Verify(func(global string, off int64) (v isa.Value, ok bool) {
		return isa.Value{}, true // all zeros
	})
	if err == nil {
		t.Error("Verify accepted a zeroed memory image")
	}
	if err = b.Verify(func(global string, off int64) (isa.Value, bool) {
		return isa.Value{}, false
	}); err == nil {
		t.Error("Verify accepted missing globals")
	}
}

// TestSourcesMentionConstructs: spot-check that variants differ in the
// threading constructs they use.
func TestSourcesMentionConstructs(t *testing.T) {
	seq, _ := Get("matrix", Sequential)
	thr, _ := Get("matrix", Threaded)
	ideal, _ := Get("matrix", Ideal)
	if strings.Contains(seq.Source, "forall") || strings.Contains(seq.Source, "fork") {
		t.Error("sequential matrix contains threading constructs")
	}
	if !strings.Contains(thr.Source, "forall-static") {
		t.Error("threaded matrix lacks forall-static")
	}
	if strings.Contains(ideal.Source, "(for ") {
		t.Error("ideal matrix contains a runtime loop")
	}
	ludT, _ := Get("lud", Threaded)
	if !strings.Contains(ludT.Source, "(forall ") {
		t.Error("threaded lud lacks runtime forall")
	}
	mq, _ := Get("modelq", Threaded)
	if !strings.Contains(mq.Source, "consume") || !strings.Contains(mq.Source, "produce") {
		t.Error("modelq lacks queue synchronization")
	}
}

// TestAllVariantsRunOnSmallMachine: the suite must also work on a
// non-baseline machine (2 IUs, 2 FPUs).
func TestAllVariantsRunOnSmallMachine(t *testing.T) {
	cfg := machine.Mix(2, 2)
	for _, name := range Names() {
		b, err := Get(name, Threaded)
		if err != nil {
			t.Fatal(err)
		}
		prog, _, err := compiler.Compile(b.Source, cfg, compiler.Options{Mode: compiler.Unrestricted})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		s, err := sim.New(cfg, prog)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if _, err := s.Run(0); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		addrs := map[string]int64{}
		for _, d := range prog.Data {
			addrs[d.Name] = d.Addr
		}
		err = b.Verify(func(g string, off int64) (isa.Value, bool) {
			base, ok := addrs[g]
			if !ok {
				return isa.Value{}, false
			}
			v, _ := s.Memory().Peek(base + off)
			return v, true
		})
		if err != nil {
			t.Errorf("%s on small machine: %v", name, err)
		}
	}
}

// TestSizedBenchmarks runs non-default problem sizes end to end on the
// baseline machine with bit-exact verification.
func TestSizedBenchmarks(t *testing.T) {
	cfg := machine.Baseline()
	cases := []struct {
		name string
		size int
	}{
		{"matrix", 5}, {"matrix", 12},
		{"fft", 16}, {"fft", 64},
		{"lud", 4}, {"lud", 6},
		{"model", 8}, {"model", 30},
	}
	for _, c := range cases {
		b, err := GetN(c.name, Threaded, c.size)
		if err != nil {
			t.Fatalf("%s/%d: %v", c.name, c.size, err)
		}
		prog, _, err := compiler.Compile(b.Source, cfg, compiler.Options{Mode: compiler.Unrestricted})
		if err != nil {
			t.Fatalf("%s/%d: %v", c.name, c.size, err)
		}
		s, err := sim.New(cfg, prog)
		if err != nil {
			t.Fatalf("%s/%d: %v", c.name, c.size, err)
		}
		if _, err := s.Run(0); err != nil {
			t.Fatalf("%s/%d: %v", c.name, c.size, err)
		}
		addrs := map[string]int64{}
		for _, d := range prog.Data {
			addrs[d.Name] = d.Addr
		}
		err = b.Verify(func(g string, off int64) (isa.Value, bool) {
			base, ok := addrs[g]
			if !ok {
				return isa.Value{}, false
			}
			v, _ := s.Memory().Peek(base + off)
			return v, true
		})
		if err != nil {
			t.Errorf("%s/%d: %v", c.name, c.size, err)
		}
	}
}

// TestSizedBenchmarkValidation rejects nonsensical sizes.
func TestSizedBenchmarkValidation(t *testing.T) {
	if _, err := GenFFTN(24, Sequential); err == nil {
		t.Error("fft accepted non-power-of-two size")
	}
	if _, err := GenFFTN(2, Sequential); err == nil {
		t.Error("fft accepted size 2")
	}
	if _, err := GenMatrixN(0, Sequential); err == nil {
		t.Error("matrix accepted size 0")
	}
	if _, err := GenLUDMesh(1, Sequential); err == nil {
		t.Error("lud accepted mesh side 1")
	}
	if _, err := GenModelN(0, 4, Sequential); err == nil {
		t.Error("model accepted 0 devices")
	}
	if _, err := GetN("modelq", Threaded, 10); err == nil {
		t.Error("modelq must reject sizing")
	}
}
