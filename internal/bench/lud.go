package bench

import (
	"fmt"
	"strings"
)

// LUD solves a sparse system of linear equations using lower-upper
// decomposition. The input is the 64x64 adjacency-structured matrix of an
// 8x8 mesh (made diagonally dominant so no pivoting is required). The
// matrix is banded with half-bandwidth 8, and LU factorization preserves
// the band, so each source row k updates only target rows k+1..k+8 and
// columns k+1..k+8; rows whose leading element is zero are skipped at
// runtime — the data-dependent control flow that prevents static
// scheduling, so there is no Ideal variant. The threaded version updates
// all target rows of each source row concurrently.
const (
	ludMesh = 8
	ludN    = ludMesh * ludMesh
	ludBand = ludMesh // half-bandwidth of the mesh matrix
)

// ludInput builds the n x n mesh matrix for an m x m mesh (n = m*m):
// A[i][i] = 5, A[i][j] = -1 for mesh neighbors, 0 elsewhere.
func ludInput(m int) []float64 {
	n := m * m
	a := make([]float64, n*n)
	at := func(r, c int) int { return r*n + c }
	for r := 0; r < m; r++ {
		for c := 0; c < m; c++ {
			i := r*m + c
			a[at(i, i)] = 5
			if r > 0 {
				a[at(i, i-m)] = -1
			}
			if r < m-1 {
				a[at(i, i+m)] = -1
			}
			if c > 0 {
				a[at(i, i-1)] = -1
			}
			if c < m-1 {
				a[at(i, i+1)] = -1
			}
		}
	}
	return a
}

// ludReference performs the banded decomposition in place with the same
// operation order and zero-skip rule as the generated program.
func ludReference(m int, a []float64) []float64 {
	n := m * m
	band := m
	out := make([]float64, len(a))
	copy(out, a)
	for k := 0; k < n; k++ {
		hi := k + 1 + band
		if hi > n {
			hi = n
		}
		for t := k + 1; t < hi; t++ {
			atk := out[t*n+k]
			if atk != 0 {
				f := atk / out[k*n+k]
				out[t*n+k] = f
				for j := k + 1; j < hi; j++ {
					out[t*n+j] = out[t*n+j] - f*out[k*n+j]
				}
			}
		}
	}
	return out
}

// ludRowUpdate renders the row-update statement for target row variable t
// reading the source row index and band limit from variables kk and hh.
func ludRowUpdate(n int) string {
	return fmt.Sprintf(`
      (let ((akt (aref A (+ (* t %d) kk))))
        (if (!= akt 0.0)
            (let ((f (/ akt (aref A (+ (* kk %d) kk)))))
              (aset A (+ (* t %d) kk) f)
              (for (j (+ kk 1) hh)
                (aset A (+ (* t %d) j)
                      (- (aref A (+ (* t %d) j))
                         (* f (aref A (+ (* kk %d) j)))))))))`, n, n, n, n, n, n)
}

// GenLUD generates the LUD benchmark at the paper's size (8x8 mesh).
func GenLUD(kind SourceKind) (*Benchmark, error) { return GenLUDMesh(ludMesh, kind) }

// GenLUDMesh generates the LUD benchmark for an m x m mesh (an m^2 x m^2
// banded matrix). There is no Ideal variant.
func GenLUDMesh(m int, kind SourceKind) (*Benchmark, error) {
	if kind == Ideal {
		return nil, fmt.Errorf("bench: lud has no ideal variant (data-dependent control flow)")
	}
	if m < 2 {
		return nil, fmt.Errorf("bench: lud mesh side %d", m)
	}
	n := m * m
	a := ludInput(m)
	want := ludReference(m, a)
	update := ludRowUpdate(n)

	var main string
	switch kind {
	case Sequential:
		main = fmt.Sprintf(`
  (def (main)
    (for (k 0 %d)
      (set kk k)
      (set hh (+ k %d))
      (if (> hh %d) (set hh %d))
      (for (t (+ k 1) hh)%s)))`, n, m+1, n, n, update)
	case Threaded:
		// The source row index and band limit are passed to the
		// row-update threads through memory (threads communicate via
		// shared memory only).
		main = fmt.Sprintf(`
  (def (main)
    (for (k 0 %d)
      (set lim (+ k %d))
      (if (> lim %d) (set lim %d))
      (set curk k)
      (set curhi lim)
      (forall (t (+ k 1) lim)
        (let ((kk curk) (hh curhi))%s))))`, n, m+1, n, n, update)
	default:
		return nil, fmt.Errorf("bench: lud: unknown kind %v", kind)
	}

	var src strings.Builder
	src.WriteString("(program lud\n")
	fmt.Fprintf(&src, "  (global A (array float %d) %s)\n", n*n, floatInit(a))
	src.WriteString("  (global curk int)\n")
	src.WriteString("  (global curhi int)\n")
	src.WriteString(main)
	src.WriteString(")\n")

	return &Benchmark{
		Name:   "lud",
		Kind:   kind,
		Source: src.String(),
		Verify: func(peek Peek) error {
			for i, w := range want {
				if err := expectFloat(peek, "A", int64(i), w); err != nil {
					return err
				}
			}
			return nil
		},
	}, nil
}
