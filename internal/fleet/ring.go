// Package fleet is the scale-out layer over multiple pcserved backends:
// a gateway (cmd/pcfleet) that speaks the same job API and fans work out
// across a health-checked pool with cache-affinity routing.
//
// Results are content-addressed and byte-identical across runs (see
// internal/service), so routing a cell by its content key gives every
// backend a naturally hot, disjoint shard of the result cache: repeat
// submissions of the same cell always land on the same backend. The
// ring uses bounded-load consistent hashing — a saturated backend spills
// to the next ring node — and the dispatcher adds failover (dead
// backends' cells re-route and retry) and hedging (straggler cells get
// one duplicate; the loser is cancelled, safe because both would return
// the same bytes).
package fleet

import (
	"hash/fnv"
	"sort"
	"strconv"
)

// defaultReplicas is the number of virtual nodes per backend. More
// replicas smooth the key distribution; 128 keeps the worst backend
// within a few percent of the mean for small pools.
const defaultReplicas = 128

// ring is a consistent-hash ring over backend names. It is not
// goroutine-safe; the pool guards it.
type ring struct {
	replicas int
	members  []string            // sorted, for deterministic rebuilds
	points   []ringPoint         // sorted by hash
	index    map[string]struct{} // membership
}

type ringPoint struct {
	hash   uint64
	member string
}

func newRing(replicas int) *ring {
	if replicas <= 0 {
		replicas = defaultReplicas
	}
	return &ring{replicas: replicas, index: map[string]struct{}{}}
}

// hashKey is FNV-64a: deterministic across processes and restarts, so a
// restarted gateway routes identically and backend caches stay hot.
func hashKey(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// add inserts a member (idempotent).
func (r *ring) add(member string) {
	if _, ok := r.index[member]; ok {
		return
	}
	r.index[member] = struct{}{}
	r.members = append(r.members, member)
	sort.Strings(r.members)
	r.rebuild()
}

// remove deletes a member (idempotent).
func (r *ring) remove(member string) {
	if _, ok := r.index[member]; !ok {
		return
	}
	delete(r.index, member)
	for i, m := range r.members {
		if m == member {
			r.members = append(r.members[:i], r.members[i+1:]...)
			break
		}
	}
	r.rebuild()
}

func (r *ring) rebuild() {
	r.points = r.points[:0]
	for _, m := range r.members {
		for i := 0; i < r.replicas; i++ {
			r.points = append(r.points, ringPoint{hashKey(m + "#" + strconv.Itoa(i)), m})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].member < r.points[j].member
	})
}

// owner returns the member owning key (its successor on the ring), or ""
// for an empty ring.
func (r *ring) owner(key string) string {
	seq := r.seq(key)
	if len(seq) == 0 {
		return ""
	}
	return seq[0]
}

// seq returns every member once, in ring order starting from key's
// successor. seq[0] is the key's owner; the rest are the spill/failover
// order (each subsequent entry is the next distinct node clockwise).
func (r *ring) seq(key string) []string {
	if len(r.points) == 0 {
		return nil
	}
	h := hashKey(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, len(r.members))
	seen := make(map[string]struct{}, len(r.members))
	for i := 0; i < len(r.points) && len(out) < len(r.members); i++ {
		p := r.points[(start+i)%len(r.points)]
		if _, ok := seen[p.member]; ok {
			continue
		}
		seen[p.member] = struct{}{}
		out = append(out, p.member)
	}
	return out
}
