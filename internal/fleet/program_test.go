package fleet

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"pcoup/internal/service"
)

const fleetTestProgram = `
(program fleetsmoke
  (global a (array int 4) (init 3 1 4 1))
  (global out (array int 1))
  (def (main)
    (set s 0)
    (for (i 0 4) (set s (+ s (aref a i))))
    (aset out 0 s)))`

// postProgram submits a program through the gateway's /v1/programs and
// returns status plus view.
func postProgram(t *testing.T, base string, req service.ProgramRequest) (int, service.JobView) {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(base+"/v1/programs", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var view service.JobView
	if resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
			t.Fatalf("decoding view: %v", err)
		}
	}
	return resp.StatusCode, view
}

// TestProgramThroughGateway routes a program job through a two-backend
// fleet: it must complete, an identical resubmission must be a cache hit
// on the same content-key owner, a recursion bomb must be rejected at
// the gateway with 422, and a budget blowout must surface as
// budget_exceeded (not failed, not retried across backends).
func TestProgramThroughGateway(t *testing.T) {
	b1, _, _ := startBackend(t, service.Options{Workers: 2})
	b2, _, _ := startBackend(t, service.Options{Workers: 2})
	_, gwts := startGateway(t, []string{b1, b2}, nil)

	// Run and verify the result arrives intact through the scatter path.
	status, view := postProgram(t, gwts.URL, service.ProgramRequest{
		ProgramSpec: service.ProgramSpec{Source: fleetTestProgram, Verify: true},
	})
	if status != http.StatusAccepted {
		t.Fatalf("submit status %d", status)
	}
	final := waitJob(t, gwts.URL, view.ID)
	if final.State != service.JobDone {
		t.Fatalf("state %s (%s)", final.State, final.Error)
	}
	var res service.ProgramResult
	if err := json.Unmarshal(final.Result, &res); err != nil {
		t.Fatal(err)
	}
	if got := res.Globals["out"]; len(got) != 1 || got[0] != "9" {
		t.Fatalf("out = %v, want [9]", got)
	}

	// Identical resubmission: the content key routes it to the same
	// backend, whose cache serves it (CacheHit through the gateway).
	status, again := postProgram(t, gwts.URL, service.ProgramRequest{
		ProgramSpec: service.ProgramSpec{Source: fleetTestProgram, Verify: true},
	})
	if status != http.StatusAccepted {
		t.Fatalf("resubmit status %d", status)
	}
	refinal := waitJob(t, gwts.URL, again.ID)
	if refinal.State != service.JobDone || !refinal.CacheHit {
		t.Fatalf("resubmit: state %s hit=%v, want done hit=true", refinal.State, refinal.CacheHit)
	}
	if string(refinal.Result) != string(final.Result) {
		t.Fatal("cached payload differs through the gateway")
	}

	// A nesting bomb is rejected at the gateway's own validation: 422,
	// and no backend ever sees it.
	status, _ = postProgram(t, gwts.URL, service.ProgramRequest{
		ProgramSpec: service.ProgramSpec{Source: strings.Repeat("(", 50_000)},
	})
	if status != http.StatusUnprocessableEntity {
		t.Fatalf("bomb status %d, want 422", status)
	}

	// A budget blowout keeps its distinct terminal state through the
	// gateway and is not retried on the second backend.
	long := `
(program spin
  (global out (array int 1))
  (def (main)
    (set s 0)
    (for (i 0 100000) (set s (+ s i)))
    (aset out 0 s)))`
	status, slow := postProgram(t, gwts.URL, service.ProgramRequest{
		ProgramSpec: service.ProgramSpec{Source: long},
		Options:     service.SimOptions{MaxCycles: 500},
	})
	if status != http.StatusAccepted {
		t.Fatalf("budget submit status %d", status)
	}
	bfinal := waitJob(t, gwts.URL, slow.ID)
	if bfinal.State != service.JobBudgetExceeded {
		t.Fatalf("state %s (%s), want budget_exceeded", bfinal.State, bfinal.Error)
	}
}
