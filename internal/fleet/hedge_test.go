package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pcoup/internal/service"
)

// fakeBackend is a scripted pcserved stand-in: jobs "finish" instantly
// unless the backend is stalled, in which case streams hang until the
// client gives up. It records DELETEs so tests can assert that hedge
// losers are cancelled.
type fakeBackend struct {
	stalled atomic.Bool
	// failAfter (ns), when set, makes streams report a deterministic
	// failure after that delay instead of finishing.
	failAfter atomic.Int64

	mu      sync.Mutex
	nextID  int
	deletes []string
}

func (f *fakeBackend) deleted() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]string(nil), f.deletes...)
}

func (f *fakeBackend) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(service.Health{Status: "ready", Accepting: true, Workers: 1})
	})
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		f.mu.Lock()
		f.nextID++
		id := fmt.Sprintf("x-%06d", f.nextID)
		f.mu.Unlock()
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(service.JobView{ID: id, State: service.JobQueued})
	})
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(service.JobView{
			ID: r.PathValue("id"), State: service.JobDone, CacheHit: false,
		})
	})
	mux.HandleFunc("GET /v1/jobs/{id}/stream", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		if f.stalled.Load() {
			if fl, ok := w.(http.Flusher); ok {
				fl.Flush() // headers out, then hang like a straggler
			}
			<-r.Context().Done()
			return
		}
		if d := f.failAfter.Load(); d > 0 {
			select {
			case <-time.After(time.Duration(d)):
			case <-r.Context().Done():
				return
			}
			fmt.Fprintf(w, "{\"state\":\"failed\",\"error\":\"injected\"}\n")
			return
		}
		fmt.Fprintf(w, "{\"v\":1}\n{\"state\":\"done\"}\n")
	})
	mux.HandleFunc("DELETE /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		f.mu.Lock()
		f.deletes = append(f.deletes, r.PathValue("id"))
		f.mu.Unlock()
		json.NewEncoder(w).Encode(service.JobView{ID: r.PathValue("id"), State: service.JobCancelled})
	})
	return mux
}

// TestHedgingFiresAndCancelsLoser: with the latency sampler primed, a
// straggling primary gets exactly one hedged duplicate on the other
// ring node; the duplicate's result is used, and the straggler's
// backend job is DELETEd.
func TestHedgingFiresAndCancelsLoser(t *testing.T) {
	fakes := map[string]*fakeBackend{}
	var urls []string
	for i := 0; i < 2; i++ {
		f := &fakeBackend{}
		ts := httptest.NewServer(f.handler())
		t.Cleanup(ts.Close)
		fakes[ts.URL] = f
		urls = append(urls, ts.URL)
	}

	gw, _ := startGateway(t, urls, func(o *Options) {
		o.HedgeQuantile = 0.5
		o.HedgeMinSamples = 1
		o.HedgeMinDelay = time.Millisecond
	})

	// Prime the sampler: one fast job (both fakes answer instantly).
	warm := service.JobSpec{Cell: &service.CellSpec{Bench: "matrix", Mode: "SEQ"}}
	wj, err := gw.Submit(warm)
	if err != nil {
		t.Fatal(err)
	}
	<-wj.done
	if v := wj.view(false); v.State != service.JobDone {
		t.Fatalf("warm-up job: %s (%s)", v.State, v.Error)
	}

	// Find the owner of the next job's routing key and stall it.
	spec := service.JobSpec{Cell: &service.CellSpec{Bench: "fft", Mode: "TPE"}}
	key, _ := routeKey(&spec)
	primary, _, err := gw.pool.pick(key, nil)
	if err != nil {
		t.Fatal(err)
	}
	fakes[primary.URL].stalled.Store(true)

	job, err := gw.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-job.done:
	case <-time.After(30 * time.Second):
		t.Fatal("hedged job never finished (hedge did not fire?)")
	}
	if v := job.view(true); v.State != service.JobDone || string(v.Result) != `{"v":1}` {
		t.Fatalf("hedged job: %s (%s), result %s", v.State, v.Error, v.Result)
	}

	fired, won := gw.Metrics().HedgeStats()
	if fired != 1 || won != 1 {
		t.Fatalf("hedges fired=%d won=%d, want 1/1", fired, won)
	}
	// The straggler's backend job is cancelled best-effort; give the
	// async DELETE a moment.
	deadline := time.Now().Add(10 * time.Second)
	for len(fakes[primary.URL].deleted()) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("stalled primary never received a DELETE for the hedge loser")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if dels := fakes[primary.URL].deleted(); len(dels) != 1 {
		t.Fatalf("primary received %d DELETEs, want 1", len(dels))
	}
	// The primary's backend must NOT have been ejected: slow is not dead.
	if !primary.Healthy() {
		t.Fatal("straggling backend was ejected by a hedge win")
	}
}

// TestHedgeBoundedWaitWhenPrimaryFails: after a hedge is launched, a
// failing primary must not pin the cell on the hung duplicate forever —
// the dispatch client has no timeout, so hedged() has to bound its wait
// for the second racer before surfacing the first error.
func TestHedgeBoundedWaitWhenPrimaryFails(t *testing.T) {
	fakes := map[string]*fakeBackend{}
	var urls []string
	for i := 0; i < 2; i++ {
		f := &fakeBackend{}
		ts := httptest.NewServer(f.handler())
		t.Cleanup(ts.Close)
		fakes[ts.URL] = f
		urls = append(urls, ts.URL)
	}

	gw, _ := startGateway(t, urls, func(o *Options) {
		o.HedgeQuantile = 0.5
		o.HedgeMinSamples = 1
		o.HedgeMinDelay = time.Millisecond
	})
	// Prime the sampler so the hedge arms well before the primary fails.
	for i := 0; i < 8; i++ {
		gw.sampler.record(20 * time.Millisecond)
	}

	spec := service.JobSpec{Cell: &service.CellSpec{Bench: "fft", Mode: "TPE"}}
	key, _ := routeKey(&spec)
	primary, _, err := gw.pool.pick(key, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Primary straggles past the hedge delay, then fails; the hedge lands
	// on the other backend, which hangs forever.
	fakes[primary.URL].failAfter.Store(int64(200 * time.Millisecond))
	for u, f := range fakes {
		if u != primary.URL {
			f.stalled.Store(true)
		}
	}

	specJSON, _ := json.Marshal(spec)
	done := make(chan error, 1)
	go func() {
		_, _, err := gw.hedged(context.Background(), primary, &task{key: key, specJSON: specJSON})
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("hedged returned success despite the primary failing")
		}
	case <-time.After(15 * time.Second):
		t.Fatal("hedged blocked unboundedly on the hung hedge after the primary failed")
	}
	fired, _ := gw.Metrics().HedgeStats()
	if fired != 1 {
		t.Fatalf("hedges fired=%d, want 1", fired)
	}
}
