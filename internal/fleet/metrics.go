package fleet

import (
	"fmt"
	"io"
	"sort"
	"sync"
)

// Metrics aggregates the gateway's counters. Live gauges (backend
// health, inflight) are sampled from the pool at render time.
type Metrics struct {
	mu sync.Mutex

	jobsTotal       map[string]int64 // gateway job state transitions
	dispatched      map[string]int64 // cells dispatched per backend URL
	affinityLookups int64            // cells routed by content key
	affinityHits    int64            // ... that the routed backend served from cache
	spills          int64            // bounded-load spills past a saturated owner
	failovers       int64            // attempts re-routed after a backend failure
	hedgesFired     int64            // straggler duplicates launched
	hedgesWon       int64            // duplicates that beat the primary
	probeFailures   int64            // failed /readyz probes
	ejections       int64            // backends ejected
	readmissions    int64            // backends re-admitted after ejection
	steals          int64            // cells stolen from saturated backend queues
	peerFillHits    int64            // cells served by a peer cache probe
	shed            map[string]int64 // admission rejections by class label
}

// NewMetrics returns an empty metrics registry.
func NewMetrics() *Metrics {
	return &Metrics{
		jobsTotal:  map[string]int64{},
		dispatched: map[string]int64{},
		shed:       map[string]int64{},
	}
}

func (m *Metrics) count(p *int64) {
	m.mu.Lock()
	*p++
	m.mu.Unlock()
}

// JobState counts a gateway job transition into the named state.
func (m *Metrics) JobState(state string) {
	m.mu.Lock()
	m.jobsTotal[state]++
	m.mu.Unlock()
}

// Dispatched counts one cell (or whole forwarded job) sent to a backend.
func (m *Metrics) Dispatched(backend string) {
	m.mu.Lock()
	m.dispatched[backend]++
	m.mu.Unlock()
}

// Affinity records one content-key-routed dispatch and whether the
// backend reported serving it from its cache (the affinity payoff).
func (m *Metrics) Affinity(hit bool) {
	m.mu.Lock()
	m.affinityLookups++
	if hit {
		m.affinityHits++
	}
	m.mu.Unlock()
}

// AffinityStats returns lifetime affinity lookups and hits.
func (m *Metrics) AffinityStats() (lookups, hits int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.affinityLookups, m.affinityHits
}

// Spilled counts one bounded-load spill.
func (m *Metrics) Spilled() { m.count(&m.spills) }

// Failover counts one attempt re-routed to another backend.
func (m *Metrics) Failover() { m.count(&m.failovers) }

// Failovers returns the lifetime failover count.
func (m *Metrics) Failovers() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.failovers
}

// HedgeFired counts one straggler duplicate launched.
func (m *Metrics) HedgeFired() { m.count(&m.hedgesFired) }

// HedgeWon counts one duplicate finishing before its primary.
func (m *Metrics) HedgeWon() { m.count(&m.hedgesWon) }

// HedgeStats returns lifetime hedges fired and won.
func (m *Metrics) HedgeStats() (fired, won int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.hedgesFired, m.hedgesWon
}

// ProbeFailed counts one failed health probe.
func (m *Metrics) ProbeFailed() { m.count(&m.probeFailures) }

// Ejected counts one backend ejection.
func (m *Metrics) Ejected() { m.count(&m.ejections) }

// Readmitted counts one backend re-admission.
func (m *Metrics) Readmitted() { m.count(&m.readmissions) }

// Stole counts n cells moved by one work-stealing transfer.
func (m *Metrics) Stole(n int) {
	m.mu.Lock()
	m.steals += int64(n)
	m.mu.Unlock()
}

// Steals returns the lifetime stolen-cell count.
func (m *Metrics) Steals() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.steals
}

// PeerFillHit counts one cell served by probing a peer backend's cache
// instead of recomputing.
func (m *Metrics) PeerFillHit() { m.count(&m.peerFillHits) }

// PeerFillHits returns the lifetime peer-fill hit count.
func (m *Metrics) PeerFillHits() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.peerFillHits
}

// Shed counts one admission rejection for the given class label
// ("interactive" or "batch" — bounded cardinality by construction).
func (m *Metrics) Shed(class string) {
	m.mu.Lock()
	m.shed[class]++
	m.mu.Unlock()
}

// ShedTotal returns the lifetime rejection count for a class label.
func (m *Metrics) ShedTotal(class string) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.shed[class]
}

// BackendGauge is one backend's live state at scrape time.
type BackendGauge struct {
	URL      string
	Healthy  bool
	Inflight int
	// QueueDepth/RemoteInflight are the backend's own load report from
	// its last successful probe.
	QueueDepth     int
	RemoteInflight int
}

// TenantGauge is one tenant's live accounting at scrape time.
type TenantGauge struct {
	Name     string
	Class    string
	Weight   int
	Queued   int
	Inflight int
}

// FleetGauges is the live state sampled by the gateway at scrape time.
//
// Label cardinality: every labeled family below is bounded by
// configuration — {backend} by the -backends list, {tenant} by the
// -tenants file (open mode has exactly one), {class} by the two
// priority classes, {state} by the job lifecycle. Nothing
// request-derived ever becomes a label.
type FleetGauges struct {
	Backends      []BackendGauge
	Tenants       []TenantGauge
	DispatchDepth map[string]int // gateway-side queued cells per backend
	JobsByState   map[string]int
	Accepting     bool
}

// WriteText renders everything in the Prometheus text exposition format.
func (m *Metrics) WriteText(w io.Writer, g FleetGauges) {
	m.mu.Lock()
	defer m.mu.Unlock()

	fmt.Fprintf(w, "# HELP pcfleet_jobs_total Gateway job state transitions since start.\n")
	fmt.Fprintf(w, "# TYPE pcfleet_jobs_total counter\n")
	for _, state := range sortedKeys(m.jobsTotal) {
		fmt.Fprintf(w, "pcfleet_jobs_total{state=%q} %d\n", state, m.jobsTotal[state])
	}

	fmt.Fprintf(w, "# HELP pcfleet_jobs_current Gateway jobs currently in each state.\n")
	fmt.Fprintf(w, "# TYPE pcfleet_jobs_current gauge\n")
	states := make([]string, 0, len(g.JobsByState))
	for s := range g.JobsByState {
		states = append(states, s)
	}
	sort.Strings(states)
	for _, s := range states {
		fmt.Fprintf(w, "pcfleet_jobs_current{state=%q} %d\n", s, g.JobsByState[s])
	}

	accepting := 0
	if g.Accepting {
		accepting = 1
	}
	fmt.Fprintf(w, "# HELP pcfleet_accepting Whether new jobs are accepted (0 during drain).\n")
	fmt.Fprintf(w, "# TYPE pcfleet_accepting gauge\n")
	fmt.Fprintf(w, "pcfleet_accepting %d\n", accepting)

	healthy := 0
	fmt.Fprintf(w, "# HELP pcfleet_backend_up Whether the backend is admitted (1) or ejected (0).\n")
	fmt.Fprintf(w, "# TYPE pcfleet_backend_up gauge\n")
	for _, b := range g.Backends {
		up := 0
		if b.Healthy {
			up = 1
			healthy++
		}
		fmt.Fprintf(w, "pcfleet_backend_up{backend=%q} %d\n", b.URL, up)
	}
	fmt.Fprintf(w, "# HELP pcfleet_backends_healthy Admitted backends.\n")
	fmt.Fprintf(w, "# TYPE pcfleet_backends_healthy gauge\n")
	fmt.Fprintf(w, "pcfleet_backends_healthy %d\n", healthy)

	fmt.Fprintf(w, "# HELP pcfleet_backend_inflight Gateway dispatches in flight per backend.\n")
	fmt.Fprintf(w, "# TYPE pcfleet_backend_inflight gauge\n")
	for _, b := range g.Backends {
		fmt.Fprintf(w, "pcfleet_backend_inflight{backend=%q} %d\n", b.URL, b.Inflight)
	}

	fmt.Fprintf(w, "# HELP pcfleet_backend_queue_depth Backend-reported queued jobs (last probe).\n")
	fmt.Fprintf(w, "# TYPE pcfleet_backend_queue_depth gauge\n")
	for _, b := range g.Backends {
		fmt.Fprintf(w, "pcfleet_backend_queue_depth{backend=%q} %d\n", b.URL, b.QueueDepth)
	}

	fmt.Fprintf(w, "# HELP pcfleet_dispatch_queue_depth Gateway-side queued cells per backend dispatch queue.\n")
	fmt.Fprintf(w, "# TYPE pcfleet_dispatch_queue_depth gauge\n")
	for _, url := range sortedKeys(g.DispatchDepth) {
		fmt.Fprintf(w, "pcfleet_dispatch_queue_depth{backend=%q} %d\n", url, g.DispatchDepth[url])
	}

	fmt.Fprintf(w, "# HELP pcfleet_tenant_queued_cells Admitted, undispatched cells per tenant.\n")
	fmt.Fprintf(w, "# TYPE pcfleet_tenant_queued_cells gauge\n")
	for _, t := range g.Tenants {
		fmt.Fprintf(w, "pcfleet_tenant_queued_cells{tenant=%q,class=%q} %d\n", t.Name, t.Class, t.Queued)
	}
	fmt.Fprintf(w, "# HELP pcfleet_tenant_inflight_cells Dispatched, unfinished cells per tenant.\n")
	fmt.Fprintf(w, "# TYPE pcfleet_tenant_inflight_cells gauge\n")
	for _, t := range g.Tenants {
		fmt.Fprintf(w, "pcfleet_tenant_inflight_cells{tenant=%q,class=%q} %d\n", t.Name, t.Class, t.Inflight)
	}
	fmt.Fprintf(w, "# HELP pcfleet_tenant_weight Configured DRR weight per tenant.\n")
	fmt.Fprintf(w, "# TYPE pcfleet_tenant_weight gauge\n")
	for _, t := range g.Tenants {
		fmt.Fprintf(w, "pcfleet_tenant_weight{tenant=%q,class=%q} %d\n", t.Name, t.Class, t.Weight)
	}

	fmt.Fprintf(w, "# HELP pcfleet_cells_dispatched_total Cells dispatched per backend.\n")
	fmt.Fprintf(w, "# TYPE pcfleet_cells_dispatched_total counter\n")
	for _, url := range sortedKeys(m.dispatched) {
		fmt.Fprintf(w, "pcfleet_cells_dispatched_total{backend=%q} %d\n", url, m.dispatched[url])
	}

	fmt.Fprintf(w, "# HELP pcfleet_affinity_lookups_total Content-key-routed dispatches.\n")
	fmt.Fprintf(w, "# TYPE pcfleet_affinity_lookups_total counter\n")
	fmt.Fprintf(w, "pcfleet_affinity_lookups_total %d\n", m.affinityLookups)
	fmt.Fprintf(w, "# HELP pcfleet_affinity_hits_total Dispatches the routed backend served from its cache.\n")
	fmt.Fprintf(w, "# TYPE pcfleet_affinity_hits_total counter\n")
	fmt.Fprintf(w, "pcfleet_affinity_hits_total %d\n", m.affinityHits)
	if m.affinityLookups > 0 {
		fmt.Fprintf(w, "# HELP pcfleet_affinity_hit_ratio Affinity hits over lookups since start.\n")
		fmt.Fprintf(w, "# TYPE pcfleet_affinity_hit_ratio gauge\n")
		fmt.Fprintf(w, "pcfleet_affinity_hit_ratio %.6f\n", float64(m.affinityHits)/float64(m.affinityLookups))
	}

	fmt.Fprintf(w, "# HELP pcfleet_spills_total Bounded-load spills past a saturated ring owner.\n")
	fmt.Fprintf(w, "# TYPE pcfleet_spills_total counter\n")
	fmt.Fprintf(w, "pcfleet_spills_total %d\n", m.spills)

	fmt.Fprintf(w, "# HELP pcfleet_failovers_total Attempts re-routed after a backend failure.\n")
	fmt.Fprintf(w, "# TYPE pcfleet_failovers_total counter\n")
	fmt.Fprintf(w, "pcfleet_failovers_total %d\n", m.failovers)

	fmt.Fprintf(w, "# HELP pcfleet_hedges_fired_total Straggler duplicates launched.\n")
	fmt.Fprintf(w, "# TYPE pcfleet_hedges_fired_total counter\n")
	fmt.Fprintf(w, "pcfleet_hedges_fired_total %d\n", m.hedgesFired)
	fmt.Fprintf(w, "# HELP pcfleet_hedges_won_total Duplicates that finished before their primary.\n")
	fmt.Fprintf(w, "# TYPE pcfleet_hedges_won_total counter\n")
	fmt.Fprintf(w, "pcfleet_hedges_won_total %d\n", m.hedgesWon)

	fmt.Fprintf(w, "# HELP pcfleet_probe_failures_total Failed backend health probes.\n")
	fmt.Fprintf(w, "# TYPE pcfleet_probe_failures_total counter\n")
	fmt.Fprintf(w, "pcfleet_probe_failures_total %d\n", m.probeFailures)
	fmt.Fprintf(w, "# HELP pcfleet_backend_ejections_total Backends ejected after failed probes or dispatch errors.\n")
	fmt.Fprintf(w, "# TYPE pcfleet_backend_ejections_total counter\n")
	fmt.Fprintf(w, "pcfleet_backend_ejections_total %d\n", m.ejections)
	fmt.Fprintf(w, "# HELP pcfleet_backend_readmissions_total Ejected backends re-admitted by a passing probe.\n")
	fmt.Fprintf(w, "# TYPE pcfleet_backend_readmissions_total counter\n")
	fmt.Fprintf(w, "pcfleet_backend_readmissions_total %d\n", m.readmissions)

	fmt.Fprintf(w, "# HELP pcfleet_steals_total Queued cells moved from a saturated backend queue to an idle one.\n")
	fmt.Fprintf(w, "# TYPE pcfleet_steals_total counter\n")
	fmt.Fprintf(w, "pcfleet_steals_total %d\n", m.steals)

	fmt.Fprintf(w, "# HELP pcfleet_peer_fill_hits_total Cells served by a peer backend's cache instead of recomputing.\n")
	fmt.Fprintf(w, "# TYPE pcfleet_peer_fill_hits_total counter\n")
	fmt.Fprintf(w, "pcfleet_peer_fill_hits_total %d\n", m.peerFillHits)

	fmt.Fprintf(w, "# HELP pcfleet_shed_total Admission rejections (quota, rate limit, high watermark) by class.\n")
	fmt.Fprintf(w, "# TYPE pcfleet_shed_total counter\n")
	for _, class := range sortedKeys(m.shed) {
		fmt.Fprintf(w, "pcfleet_shed_total{class=%q} %d\n", class, m.shed[class])
	}
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
