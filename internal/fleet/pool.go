package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"sort"
	"sync"
	"time"

	"pcoup/internal/service"
)

// ErrNoBackends: every backend is ejected (or the pool is empty).
var ErrNoBackends = errors.New("fleet: no healthy backends")

// Backend is one pcserved process behind the gateway.
type Backend struct {
	// URL is the backend's base URL (also its ring member name).
	URL string

	mu           sync.Mutex
	healthy      bool
	consecFails  int
	probeBackoff time.Duration // readmission probe backoff while ejected
	nextProbe    time.Time
	lastErr      string
	inflight     int            // gateway dispatches in flight to this backend
	load         service.Health // last load report from /readyz
}

// Healthy reports whether the backend is currently admitted.
func (b *Backend) Healthy() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.healthy
}

// Inflight returns the gateway's in-flight dispatch count to the backend.
func (b *Backend) Inflight() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.inflight
}

func (b *Backend) acquire() {
	b.mu.Lock()
	b.inflight++
	b.mu.Unlock()
}

func (b *Backend) release() {
	b.mu.Lock()
	b.inflight--
	b.mu.Unlock()
}

// PoolOptions configures the backend pool.
type PoolOptions struct {
	// Backends are the pcserved base URLs fronted by the gateway.
	Backends []string
	// Replicas is the virtual-node count per backend (default 128).
	Replicas int
	// ProbeInterval is the /readyz cadence for healthy backends
	// (default 500ms).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one probe request (default 2s).
	ProbeTimeout time.Duration
	// EjectAfter ejects a backend after this many consecutive probe
	// failures (default 2). Dispatch errors eject immediately.
	EjectAfter int
	// ReadmitMaxBackoff caps the probe backoff for an ejected backend:
	// re-admission probes start at ProbeInterval and double up to this
	// (default 8s), so a flapping backend is not hammered.
	ReadmitMaxBackoff time.Duration
	// LoadFactor is the bounded-load constant c: a backend is saturated
	// when its in-flight count exceeds ceil(c * (total+1) / healthy), and
	// keys spill to the next ring node (default 1.25).
	LoadFactor float64
}

func (o *PoolOptions) defaults() {
	if o.ProbeInterval <= 0 {
		o.ProbeInterval = 500 * time.Millisecond
	}
	if o.ProbeTimeout <= 0 {
		o.ProbeTimeout = 2 * time.Second
	}
	if o.EjectAfter <= 0 {
		o.EjectAfter = 2
	}
	if o.ReadmitMaxBackoff <= 0 {
		o.ReadmitMaxBackoff = 8 * time.Second
	}
	if o.LoadFactor < 1 {
		o.LoadFactor = 1.25
	}
}

// Pool is the health-checked backend set plus the routing ring. The ring
// holds every configured backend permanently; health filters at
// selection time, so when an ejected backend is re-admitted its keys
// route home again and find its cache still hot.
type Pool struct {
	opts    PoolOptions
	client  *http.Client
	metrics *Metrics

	mu       sync.Mutex
	ring     *ring
	backends map[string]*Backend

	stop chan struct{}
	done chan struct{}
}

func newPool(opts PoolOptions, m *Metrics) (*Pool, error) {
	opts.defaults()
	if len(opts.Backends) == 0 {
		return nil, errors.New("fleet: no backends configured")
	}
	p := &Pool{
		opts:     opts,
		client:   &http.Client{Timeout: opts.ProbeTimeout},
		metrics:  m,
		ring:     newRing(opts.Replicas),
		backends: map[string]*Backend{},
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	for _, url := range opts.Backends {
		if _, ok := p.backends[url]; ok {
			return nil, fmt.Errorf("fleet: duplicate backend %s", url)
		}
		p.backends[url] = &Backend{URL: url}
		p.ring.add(url)
	}
	return p, nil
}

// start probes every backend once synchronously (so the gateway can
// route immediately) and launches the periodic prober.
func (p *Pool) start() {
	p.probeAll(time.Now())
	go p.loop()
}

func (p *Pool) close() {
	close(p.stop)
	<-p.done
}

func (p *Pool) loop() {
	defer close(p.done)
	t := time.NewTicker(p.opts.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-p.stop:
			return
		case now := <-t.C:
			p.probeAll(now)
		}
	}
}

// probeAll probes, in parallel, every backend whose next probe is due.
// Healthy backends are due every tick; ejected ones follow their
// re-admission backoff.
func (p *Pool) probeAll(now time.Time) {
	var wg sync.WaitGroup
	for _, b := range p.all() {
		b.mu.Lock()
		due := !b.nextProbe.After(now)
		b.mu.Unlock()
		if !due {
			continue
		}
		wg.Add(1)
		go func(b *Backend) {
			defer wg.Done()
			p.probe(b)
		}(b)
	}
	wg.Wait()
}

// probe hits /readyz once and applies the ejection / re-admission rules.
// The readyz body doubles as the backend's load report (queue depth,
// inflight) — one request serves both purposes.
func (p *Pool) probe(b *Backend) {
	health, err := p.fetchReadyz(b.URL)
	b.mu.Lock()
	defer b.mu.Unlock()
	if err == nil {
		if !b.healthy {
			p.metrics.Readmitted()
		}
		b.healthy = true
		b.consecFails = 0
		b.probeBackoff = 0
		b.lastErr = ""
		b.load = *health
		b.nextProbe = time.Now().Add(p.opts.ProbeInterval)
		return
	}
	b.consecFails++
	b.lastErr = err.Error()
	p.metrics.ProbeFailed()
	if b.healthy && b.consecFails >= p.opts.EjectAfter {
		b.healthy = false
		p.metrics.Ejected()
	}
	if !b.healthy {
		// Ejected: back the probes off (doubling, capped) so a dead
		// backend is not hammered while it restarts.
		if b.probeBackoff == 0 {
			b.probeBackoff = p.opts.ProbeInterval
		} else if b.probeBackoff < p.opts.ReadmitMaxBackoff {
			b.probeBackoff *= 2
			if b.probeBackoff > p.opts.ReadmitMaxBackoff {
				b.probeBackoff = p.opts.ReadmitMaxBackoff
			}
		}
		b.nextProbe = time.Now().Add(b.probeBackoff)
	} else {
		b.nextProbe = time.Now().Add(p.opts.ProbeInterval)
	}
}

func (p *Pool) fetchReadyz(base string) (*service.Health, error) {
	ctx, cancel := context.WithTimeout(context.Background(), p.opts.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, "GET", base+"/readyz", nil)
	if err != nil {
		return nil, err
	}
	resp, err := p.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("readyz: %s", resp.Status)
	}
	var h service.Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		return nil, fmt.Errorf("readyz: %w", err)
	}
	return &h, nil
}

// markDown ejects a backend immediately after a dispatch-path failure
// (connection refused mid-job): the next cells must not wait for the
// prober to notice.
func (p *Pool) markDown(b *Backend, err error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.healthy {
		return
	}
	b.healthy = false
	b.consecFails = p.opts.EjectAfter
	b.probeBackoff = p.opts.ProbeInterval
	b.nextProbe = time.Now().Add(b.probeBackoff)
	if err != nil {
		b.lastErr = err.Error()
	}
	p.metrics.Ejected()
}

// all returns every backend in stable (URL-sorted) order.
func (p *Pool) all() []*Backend {
	p.mu.Lock()
	defer p.mu.Unlock()
	urls := make([]string, 0, len(p.backends))
	for u := range p.backends {
		urls = append(urls, u)
	}
	sort.Strings(urls)
	out := make([]*Backend, len(urls))
	for i, u := range urls {
		out[i] = p.backends[u]
	}
	return out
}

func (p *Pool) healthyCount() int {
	n := 0
	for _, b := range p.all() {
		if b.Healthy() {
			n++
		}
	}
	return n
}

// get returns the backend for a URL (nil if unknown).
func (p *Pool) get(url string) *Backend {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.backends[url]
}

// seq returns every backend URL in key's ring order (owner first),
// regardless of health.
func (p *Pool) seq(key string) []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.ring.seq(key)
}

// ownerURL returns the dispatch-queue home for a key: the first healthy
// backend in ring order, else the unconditional ring owner (its queue
// drains by stealing until the owner returns).
func (p *Pool) ownerURL(key string) string {
	seq := p.seq(key)
	for _, url := range seq {
		if b := p.get(url); b != nil && b.Healthy() {
			return url
		}
	}
	if len(seq) > 0 {
		return seq[0]
	}
	return ""
}

// candidates returns the healthy backends in key's ring order (owner
// first), excluding the given URLs.
func (p *Pool) candidates(key string, exclude map[string]bool) []*Backend {
	p.mu.Lock()
	seq := p.ring.seq(key)
	p.mu.Unlock()
	out := make([]*Backend, 0, len(seq))
	for _, url := range seq {
		if exclude[url] {
			continue
		}
		p.mu.Lock()
		b := p.backends[url]
		p.mu.Unlock()
		if b != nil && b.Healthy() {
			out = append(out, b)
		}
	}
	return out
}

// pick chooses the backend for key under bounded-load consistent
// hashing: the first healthy ring node with in-flight work below
// capacity, spilling clockwise past saturated nodes. The second return
// reports whether the pick spilled past a saturated candidate.
func (p *Pool) pick(key string, exclude map[string]bool) (*Backend, bool, error) {
	cands := p.candidates(key, exclude)
	if len(cands) == 0 {
		return nil, false, ErrNoBackends
	}
	total := 0
	for _, b := range cands {
		total += b.Inflight()
	}
	capacity := int(math.Ceil(p.opts.LoadFactor * float64(total+1) / float64(len(cands))))
	for i, b := range cands {
		if b.Inflight() < capacity {
			return b, i > 0, nil
		}
	}
	// Everyone is saturated (possible transiently between the capacity
	// read and the walk): the owner absorbs the overload.
	return cands[0], false, nil
}
