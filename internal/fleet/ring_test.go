package fleet

import (
	"fmt"
	"testing"
)

func testKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("sha256:%064d", i)
	}
	return keys
}

func owners(r *ring, keys []string) map[string]string {
	out := make(map[string]string, len(keys))
	for _, k := range keys {
		out[k] = r.owner(k)
	}
	return out
}

// TestRingLeaveMovesOnlyOrphanedKeys: removing one member must remap
// exactly the keys it owned — every other key keeps its owner (the
// property that keeps the surviving backends' caches hot through an
// ejection).
func TestRingLeaveMovesOnlyOrphanedKeys(t *testing.T) {
	members := []string{"http://a:1", "http://b:1", "http://c:1", "http://d:1"}
	r := newRing(0)
	for _, m := range members {
		r.add(m)
	}
	keys := testKeys(5000)
	before := owners(r, keys)

	const gone = "http://c:1"
	r.remove(gone)
	after := owners(r, keys)

	moved := 0
	for _, k := range keys {
		switch {
		case before[k] != gone && after[k] != before[k]:
			t.Fatalf("key %s moved from surviving member %s to %s", k, before[k], after[k])
		case before[k] == gone:
			moved++
			if after[k] == gone {
				t.Fatalf("key %s still owned by removed member", k)
			}
		}
	}
	if moved == 0 {
		t.Fatal("removed member owned no keys; distribution is broken")
	}
}

// TestRingJoinBoundedMovement: adding a member to an n-member ring must
// move only keys that now belong to the newcomer — roughly 1/(n+1) of
// them, never to a different old member.
func TestRingJoinBoundedMovement(t *testing.T) {
	members := []string{"http://a:1", "http://b:1", "http://c:1", "http://d:1"}
	r := newRing(0)
	for _, m := range members {
		r.add(m)
	}
	keys := testKeys(5000)
	before := owners(r, keys)

	const joined = "http://e:1"
	r.add(joined)
	after := owners(r, keys)

	moved := 0
	for _, k := range keys {
		if after[k] == before[k] {
			continue
		}
		if after[k] != joined {
			t.Fatalf("key %s moved between old members: %s -> %s", k, before[k], after[k])
		}
		moved++
	}
	// Expect ~1/5 of the keys; allow generous slack for hash variance.
	if lo, hi := len(keys)/10, len(keys)/2; moved < lo || moved > hi {
		t.Fatalf("join moved %d of %d keys; want between %d and %d", moved, len(keys), lo, hi)
	}
}

// TestRingRejoinRestoresOwnership: leave followed by re-join restores
// the original mapping exactly (re-admitted backends find their old
// cache shard routed back to them).
func TestRingRejoinRestoresOwnership(t *testing.T) {
	members := []string{"http://a:1", "http://b:1", "http://c:1"}
	r := newRing(0)
	for _, m := range members {
		r.add(m)
	}
	keys := testKeys(2000)
	before := owners(r, keys)
	r.remove("http://b:1")
	r.add("http://b:1")
	after := owners(r, keys)
	for _, k := range keys {
		if before[k] != after[k] {
			t.Fatalf("key %s changed owner across leave/rejoin: %s -> %s", k, before[k], after[k])
		}
	}
}

// TestRingDistribution: with virtual nodes, no member owns a wildly
// disproportionate share.
func TestRingDistribution(t *testing.T) {
	members := []string{"http://a:1", "http://b:1", "http://c:1", "http://d:1"}
	r := newRing(0)
	for _, m := range members {
		r.add(m)
	}
	keys := testKeys(8000)
	counts := map[string]int{}
	for _, k := range keys {
		counts[r.owner(k)]++
	}
	for _, m := range members {
		share := float64(counts[m]) / float64(len(keys))
		if share < 0.10 || share > 0.45 {
			t.Fatalf("member %s owns %.1f%% of keys; want a roughly even split", m, 100*share)
		}
	}
}

// TestRingSeq: seq lists every member exactly once, starting with the
// owner (the failover and hedge order).
func TestRingSeq(t *testing.T) {
	members := []string{"http://a:1", "http://b:1", "http://c:1"}
	r := newRing(0)
	for _, m := range members {
		r.add(m)
	}
	for _, k := range testKeys(100) {
		seq := r.seq(k)
		if len(seq) != len(members) {
			t.Fatalf("seq(%s) has %d members, want %d", k, len(seq), len(members))
		}
		if seq[0] != r.owner(k) {
			t.Fatalf("seq(%s)[0] = %s, owner = %s", k, seq[0], r.owner(k))
		}
		seen := map[string]bool{}
		for _, m := range seq {
			if seen[m] {
				t.Fatalf("seq(%s) repeats %s", k, m)
			}
			seen[m] = true
		}
	}
}

// TestRingEmpty: an empty ring owns nothing and panics nowhere.
func TestRingEmpty(t *testing.T) {
	r := newRing(0)
	if got := r.owner("k"); got != "" {
		t.Fatalf("empty ring owner = %q, want empty", got)
	}
	if got := r.seq("k"); len(got) != 0 {
		t.Fatalf("empty ring seq = %v, want empty", got)
	}
}
