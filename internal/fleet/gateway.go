package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"pcoup/internal/machine"
	"pcoup/internal/service"
)

// Gateway submission errors distinguished by the HTTP layer.
var (
	// ErrDraining: the gateway is shutting down.
	ErrDraining = errors.New("fleet: shutting down, not accepting jobs")
	// ErrNotFound: no such gateway job.
	ErrNotFound = errors.New("fleet: no such job")
)

// Options configures a Gateway.
type Options struct {
	// Pool configures the backend set and health checking.
	Pool PoolOptions
	// MaxInflight caps concurrently dispatched cells across all jobs
	// (default 8 per backend).
	MaxInflight int
	// RetryBudget is the attempt count per cell across backends before
	// the job fails (default 3).
	RetryBudget int
	// RetryBackoff is the base delay between failover attempts of one
	// cell; it doubles per attempt, capped at 30s (default 200ms).
	RetryBackoff time.Duration
	// HedgeQuantile is the completed-cell latency quantile after which a
	// straggler gets one hedged duplicate (default 0.9). Zero or >= 1
	// disables hedging.
	HedgeQuantile float64
	// HedgeMinSamples is how many completed cells must be observed
	// before hedging arms (default 8).
	HedgeMinSamples int
	// HedgeMinDelay floors the hedge trigger delay so microsecond cache
	// hits do not spawn pointless duplicates (default 25ms).
	HedgeMinDelay time.Duration
	// PresetNames lists preset names known to the backends besides
	// "baseline"; specs naming them are forwarded without local
	// validation (the backend validates).
	PresetNames []string
}

func (o *Options) defaults() {
	if o.MaxInflight <= 0 {
		o.MaxInflight = 8 * len(o.Pool.Backends)
	}
	if o.RetryBudget <= 0 {
		o.RetryBudget = 3
	}
	if o.RetryBackoff <= 0 {
		o.RetryBackoff = 200 * time.Millisecond
	}
	if o.HedgeQuantile == 0 {
		o.HedgeQuantile = 0.9
	}
	if o.HedgeMinSamples <= 0 {
		o.HedgeMinSamples = 8
	}
	if o.HedgeMinDelay <= 0 {
		o.HedgeMinDelay = 25 * time.Millisecond
	}
}

// Gateway fronts a pool of pcserved backends behind the same HTTP job
// API: sweeps scatter across the ring per cell and gather back in grid
// order (byte-identical to a single backend); other jobs forward whole
// to their content-key owner.
type Gateway struct {
	opts    Options
	pool    *Pool
	metrics *Metrics
	client  *http.Client // dispatch client (no timeout: streams are long)
	sem     chan struct{}
	sampler *latencySampler

	baseCtx    context.Context
	baseCancel context.CancelFunc
	wg         sync.WaitGroup

	mu        sync.Mutex
	jobs      map[string]*fleetJob
	order     []*fleetJob
	nextID    int
	accepting bool
	started   bool
}

// New builds a Gateway; call Start before serving its Handler.
func New(opts Options) (*Gateway, error) {
	opts.defaults()
	m := NewMetrics()
	pool, err := newPool(opts.Pool, m)
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	return &Gateway{
		opts:       opts,
		pool:       pool,
		metrics:    m,
		client:     &http.Client{},
		sem:        make(chan struct{}, opts.MaxInflight),
		sampler:    newLatencySampler(),
		baseCtx:    ctx,
		baseCancel: cancel,
		jobs:       map[string]*fleetJob{},
		accepting:  true,
	}, nil
}

// Metrics exposes the gateway's counters (tests and tooling).
func (g *Gateway) Metrics() *Metrics { return g.metrics }

// Pool exposes the backend pool (tests and tooling).
func (g *Gateway) Pool() *Pool { return g.pool }

// Start probes the backends once and launches the health-check loop.
func (g *Gateway) Start() error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.started {
		return errors.New("fleet: already started")
	}
	g.started = true
	g.pool.start()
	return nil
}

// Shutdown stops the gateway: new submissions are refused, in-flight
// jobs drain until ctx expires (then their dispatches are cancelled),
// and the prober stops.
func (g *Gateway) Shutdown(ctx context.Context) error {
	g.mu.Lock()
	g.accepting = false
	started := g.started
	g.mu.Unlock()

	waited := make(chan struct{})
	go func() {
		g.wg.Wait()
		close(waited)
	}()
	var drainErr error
	select {
	case <-waited:
	case <-ctx.Done():
		g.baseCancel()
		<-waited
		drainErr = ctx.Err()
	}
	g.baseCancel()
	if started {
		g.pool.close()
	}
	return drainErr
}

// fleetJob is one gateway job: a scattered sweep or a forwarded unit.
type fleetJob struct {
	mu sync.Mutex

	id      string
	spec    service.JobSpec
	state   service.JobState
	errMsg  string
	result  json.RawMessage
	cells   []json.RawMessage
	total   int
	hit     bool // every dispatch was served from a backend cache
	created time.Time
	started time.Time
	ended   time.Time

	cancelled bool
	cancel    context.CancelFunc
	updated   chan struct{}
	done      chan struct{}
}

func (j *fleetJob) notifyLocked() {
	close(j.updated)
	j.updated = make(chan struct{})
}

// appendCell records one merged cell in grid order and wakes streamers.
func (j *fleetJob) appendCell(payload json.RawMessage) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.cells = append(j.cells, payload)
	j.notifyLocked()
}

func (j *fleetJob) finish(state service.JobState, result json.RawMessage, errMsg string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() {
		return
	}
	j.state = state
	j.result = result
	j.errMsg = errMsg
	j.ended = time.Now()
	j.notifyLocked()
	close(j.done)
}

// view renders the job as the shared wire representation.
func (j *fleetJob) view(withResult bool) service.JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := service.JobView{
		ID: j.id, State: j.state, Spec: j.spec, Error: j.errMsg,
		CacheHit:  j.hit,
		CellsDone: len(j.cells), CellsTotal: j.total,
		Created: j.created,
	}
	if !j.started.IsZero() {
		t := j.started
		v.Started = &t
	}
	if !j.ended.IsZero() {
		t := j.ended
		v.Finished = &t
	}
	if withResult {
		v.Result = j.result
	}
	return v
}

// Submit validates spec (as far as the gateway can without the
// backends' preset tables) and launches its execution.
func (g *Gateway) Submit(spec service.JobSpec) (*fleetJob, error) {
	if err := g.validate(&spec); err != nil {
		return nil, err
	}
	g.mu.Lock()
	if !g.accepting {
		g.mu.Unlock()
		return nil, ErrDraining
	}
	g.nextID++
	job := &fleetJob{
		id:      fmt.Sprintf("f-%06d", g.nextID),
		spec:    spec,
		state:   service.JobQueued,
		created: time.Now(),
		updated: make(chan struct{}),
		done:    make(chan struct{}),
	}
	g.jobs[job.id] = job
	g.order = append(g.order, job)
	g.wg.Add(1)
	g.mu.Unlock()
	g.metrics.JobState(string(service.JobQueued))

	go func() {
		defer g.wg.Done()
		g.runJob(job)
	}()
	return job, nil
}

// validate mirrors the backend's spec validation where the gateway has
// the information; preset resolution beyond "baseline" is left to the
// backend that receives the forwarded job.
func (g *Gateway) validate(spec *service.JobSpec) error {
	if spec.Preset != "" && spec.Preset != "baseline" {
		known := false
		for _, n := range g.opts.PresetNames {
			if n == spec.Preset {
				known = true
			}
		}
		if !known {
			return fmt.Errorf("unknown preset %q (gateway knows: %s)", spec.Preset, presetList(g.opts.PresetNames))
		}
		// Minimal structural checks; the owning backend validates fully.
		selected := 0
		if spec.Experiment != "" {
			selected++
		}
		if spec.Cell != nil {
			selected++
		}
		if spec.Sweep != nil {
			selected++
		}
		if selected != 1 {
			return fmt.Errorf("spec must set exactly one of experiment, cell, sweep (got %d)", selected)
		}
		// Mirror the backend rule: a sweep with a preset is always invalid,
		// and skipping Normalize here would scatter an unnormalized sweep
		// (empty bench list, unchecked geometry) into zero cells.
		if spec.Sweep != nil {
			return fmt.Errorf("sweep jobs build their own machines (machine/preset must be unset)")
		}
		return nil
	}
	_, err := spec.Normalize(map[string]*machine.Config{"baseline": machine.Baseline()})
	return err
}

func presetList(names []string) string {
	out := "baseline"
	for _, n := range names {
		out += ", " + n
	}
	return out
}

// Get returns a gateway job by id.
func (g *Gateway) Get(id string) (*fleetJob, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	job, ok := g.jobs[id]
	if !ok {
		return nil, ErrNotFound
	}
	return job, nil
}

// List snapshots all gateway jobs in submission order.
func (g *Gateway) List() []service.JobView {
	g.mu.Lock()
	jobs := append([]*fleetJob(nil), g.order...)
	g.mu.Unlock()
	out := make([]service.JobView, len(jobs))
	for i, j := range jobs {
		out[i] = j.view(false)
	}
	return out
}

// Cancel requests cancellation of a gateway job; in-flight backend
// dispatches observe it through their request contexts.
func (g *Gateway) Cancel(id string) (*fleetJob, error) {
	job, err := g.Get(id)
	if err != nil {
		return nil, err
	}
	job.mu.Lock()
	job.cancelled = true
	state := job.state
	cancel := job.cancel
	job.mu.Unlock()
	if state.Terminal() {
		return job, nil
	}
	if cancel != nil {
		cancel()
	} else {
		job.finish(service.JobCancelled, nil, "cancelled before execution")
		g.metrics.JobState(string(service.JobCancelled))
	}
	return job, nil
}

// gauges samples the live state for /metrics and /healthz.
func (g *Gateway) gauges() FleetGauges {
	g.mu.Lock()
	byState := map[string]int{}
	for _, j := range g.order {
		j.mu.Lock()
		byState[string(j.state)]++
		j.mu.Unlock()
	}
	accepting := g.accepting
	g.mu.Unlock()
	var backends []BackendGauge
	for _, b := range g.pool.all() {
		b.mu.Lock()
		backends = append(backends, BackendGauge{
			URL: b.URL, Healthy: b.healthy, Inflight: b.inflight,
			QueueDepth: b.load.QueueDepth, RemoteInflight: b.load.Inflight,
		})
		b.mu.Unlock()
	}
	return FleetGauges{Backends: backends, JobsByState: byState, Accepting: accepting}
}
