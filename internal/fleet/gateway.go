package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"pcoup/internal/machine"
	"pcoup/internal/service"
	"pcoup/internal/tenant"
)

// Gateway submission errors distinguished by the HTTP layer.
var (
	// ErrDraining: the gateway is shutting down.
	ErrDraining = errors.New("fleet: shutting down, not accepting jobs")
	// ErrNotFound: no such gateway job.
	ErrNotFound = errors.New("fleet: no such job")
)

// Options configures a Gateway.
type Options struct {
	// Pool configures the backend set and health checking.
	Pool PoolOptions
	// Tenants authenticates and meters submitters; nil runs open, with a
	// single unlimited "default" tenant and no key required.
	Tenants *tenant.Registry
	// Scheduling picks the dispatch discipline: "drr" (default — weighted
	// deficit round robin per tenant under strict interactive-before-
	// batch priority) or "fifo" (arrival order, the pre-tenant behavior,
	// kept as the fleetfair baseline).
	Scheduling string
	// BackendConcurrency is the worker count per backend draining the
	// dispatch queues (default 8). It replaces the old gateway-global
	// MaxInflight semaphore: concurrency is now per backend, and queued
	// cells wait in tenant-fair queues instead of a FIFO convoy.
	BackendConcurrency int
	// StealChunk bounds the cells moved per work-stealing transfer from a
	// saturated backend's queue tail to an idle backend (default 8).
	StealChunk int
	// NoPeerFill disables the distributed cache probe (owner's cache,
	// then the next ring node's) before computing a cell.
	NoPeerFill bool
	// HighWatermark is the global queued-cell count above which new batch
	// submissions are shed with 429; above twice the mark every class is
	// shed (default 4096; negative disables).
	HighWatermark int
	// RetryBudget is the attempt count per cell across backends before
	// the job fails (default 3).
	RetryBudget int
	// RetryBackoff is the base delay between failover attempts of one
	// cell; it doubles per attempt, capped at 30s (default 200ms).
	RetryBackoff time.Duration
	// HedgeQuantile is the completed-cell latency quantile after which a
	// straggler gets one hedged duplicate (default 0.9). Zero or >= 1
	// disables hedging.
	HedgeQuantile float64
	// HedgeMinSamples is how many completed cells must be observed
	// before hedging arms (default 8).
	HedgeMinSamples int
	// HedgeMinDelay floors the hedge trigger delay so microsecond cache
	// hits do not spawn pointless duplicates (default 25ms).
	HedgeMinDelay time.Duration
	// PresetNames lists preset names known to the backends besides
	// "baseline"; specs naming them are forwarded without local
	// validation (the backend validates).
	PresetNames []string
}

func (o *Options) defaults() {
	if o.Tenants == nil {
		o.Tenants = tenant.Open()
	}
	if o.Scheduling == "" {
		o.Scheduling = "drr"
	}
	if o.BackendConcurrency <= 0 {
		o.BackendConcurrency = 8
	}
	if o.HighWatermark == 0 {
		o.HighWatermark = 4096
	}
	if o.RetryBudget <= 0 {
		o.RetryBudget = 3
	}
	if o.RetryBackoff <= 0 {
		o.RetryBackoff = 200 * time.Millisecond
	}
	if o.HedgeQuantile == 0 {
		o.HedgeQuantile = 0.9
	}
	if o.HedgeMinSamples <= 0 {
		o.HedgeMinSamples = 8
	}
	if o.HedgeMinDelay <= 0 {
		o.HedgeMinDelay = 25 * time.Millisecond
	}
}

// Gateway fronts a pool of pcserved backends behind the same HTTP job
// API: sweeps scatter across the ring per cell and gather back in grid
// order (byte-identical to a single backend); other jobs forward whole
// to their content-key owner.
type Gateway struct {
	opts    Options
	pool    *Pool
	tenants *tenant.Registry
	disp    *dispatcher
	metrics *Metrics
	client  *http.Client // dispatch client (no timeout: streams are long)
	probe   *http.Client // peer-fill cache probes (bounded)
	sampler *latencySampler

	baseCtx    context.Context
	baseCancel context.CancelFunc
	wg         sync.WaitGroup // job goroutines
	workerWg   sync.WaitGroup // dispatch workers

	mu        sync.Mutex
	jobs      map[string]*fleetJob
	order     []*fleetJob
	nextID    int
	accepting bool
	started   bool
}

// New builds a Gateway; call Start before serving its Handler.
func New(opts Options) (*Gateway, error) {
	opts.defaults()
	if opts.Scheduling != "drr" && opts.Scheduling != "fifo" {
		return nil, fmt.Errorf("fleet: unknown scheduling %q (drr|fifo)", opts.Scheduling)
	}
	m := NewMetrics()
	pool, err := newPool(opts.Pool, m)
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	return &Gateway{
		opts:       opts,
		pool:       pool,
		tenants:    opts.Tenants,
		disp:       newDispatcher(opts.Pool.Backends, opts.Scheduling == "drr", opts.StealChunk, m),
		metrics:    m,
		client:     &http.Client{},
		probe:      &http.Client{Timeout: 2 * time.Second},
		sampler:    newLatencySampler(),
		baseCtx:    ctx,
		baseCancel: cancel,
		jobs:       map[string]*fleetJob{},
		accepting:  true,
	}, nil
}

// Metrics exposes the gateway's counters (tests and tooling).
func (g *Gateway) Metrics() *Metrics { return g.metrics }

// Pool exposes the backend pool (tests and tooling).
func (g *Gateway) Pool() *Pool { return g.pool }

// Tenants exposes the tenant registry (the HTTP layer authenticates
// against it).
func (g *Gateway) Tenants() *tenant.Registry { return g.tenants }

// Start probes the backends once, launches the health-check loop, and
// spawns the per-backend dispatch workers.
func (g *Gateway) Start() error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.started {
		return errors.New("fleet: already started")
	}
	g.started = true
	g.pool.start()
	for _, b := range g.pool.all() {
		for i := 0; i < g.opts.BackendConcurrency; i++ {
			g.workerWg.Add(1)
			go g.worker(b)
		}
	}
	return nil
}

// Shutdown stops the gateway: new submissions are refused, in-flight
// jobs drain until ctx expires (then their dispatches are cancelled),
// and the prober stops.
func (g *Gateway) Shutdown(ctx context.Context) error {
	g.mu.Lock()
	g.accepting = false
	started := g.started
	g.mu.Unlock()

	waited := make(chan struct{})
	go func() {
		g.wg.Wait()
		close(waited)
	}()
	var drainErr error
	select {
	case <-waited:
	case <-ctx.Done():
		g.baseCancel()
		<-waited
		drainErr = ctx.Err()
	}
	g.baseCancel()
	g.disp.close()
	g.workerWg.Wait()
	if started {
		g.pool.close()
	}
	return drainErr
}

// fleetJob is one gateway job: a scattered sweep or a forwarded unit.
type fleetJob struct {
	mu sync.Mutex

	id      string
	spec    service.JobSpec
	tenant  *tenant.Tenant
	state   service.JobState
	errMsg  string
	result  json.RawMessage
	cells   []json.RawMessage
	total   int
	hit     bool // every dispatch was served from a backend cache
	created time.Time
	started time.Time
	ended   time.Time

	cancelled bool
	cancel    context.CancelFunc
	updated   chan struct{}
	done      chan struct{}
}

func (j *fleetJob) notifyLocked() {
	close(j.updated)
	j.updated = make(chan struct{})
}

// appendCell records one merged cell in grid order and wakes streamers.
func (j *fleetJob) appendCell(payload json.RawMessage) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.cells = append(j.cells, payload)
	j.notifyLocked()
}

func (j *fleetJob) finish(state service.JobState, result json.RawMessage, errMsg string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() {
		return
	}
	j.state = state
	j.result = result
	j.errMsg = errMsg
	j.ended = time.Now()
	j.notifyLocked()
	close(j.done)
}

// view renders the job as the shared wire representation.
func (j *fleetJob) view(withResult bool) service.JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := service.JobView{
		ID: j.id, State: j.state, Spec: j.spec, Error: j.errMsg,
		CacheHit:  j.hit,
		CellsDone: len(j.cells), CellsTotal: j.total,
		Created: j.created,
	}
	if j.tenant != nil {
		v.Tenant = j.tenant.Name()
	}
	if !j.started.IsZero() {
		t := j.started
		v.Started = &t
	}
	if !j.ended.IsZero() {
		t := j.ended
		v.Finished = &t
	}
	if withResult {
		v.Result = j.result
	}
	return v
}

// Submit runs SubmitAs for the open-mode default tenant (tests,
// embedded use). With a closed registry it fails: callers must
// authenticate and use SubmitAs.
func (g *Gateway) Submit(spec service.JobSpec) (*fleetJob, error) {
	ten := g.tenants.Default()
	if ten == nil {
		return nil, tenant.ErrUnauthorized
	}
	return g.SubmitAs(spec, ten)
}

// SubmitAs validates spec (as far as the gateway can without the
// backends' preset tables), runs admission control for the tenant, and
// launches the job's execution. A *tenant.QuotaError return maps to
// HTTP 429 + Retry-After.
func (g *Gateway) SubmitAs(spec service.JobSpec, ten *tenant.Tenant) (*fleetJob, error) {
	if err := g.validate(&spec); err != nil {
		return nil, err
	}
	cells := 1
	if spec.Sweep != nil {
		cells = len(spec.Sweep.Cells())
	}
	if err := g.admit(ten, cells); err != nil {
		return nil, err
	}
	g.mu.Lock()
	if !g.accepting {
		g.mu.Unlock()
		ten.SubQueued(cells)
		return nil, ErrDraining
	}
	g.nextID++
	job := &fleetJob{
		id:      fmt.Sprintf("f-%06d", g.nextID),
		spec:    spec,
		tenant:  ten,
		state:   service.JobQueued,
		created: time.Now(),
		updated: make(chan struct{}),
		done:    make(chan struct{}),
	}
	g.jobs[job.id] = job
	g.order = append(g.order, job)
	g.wg.Add(1)
	g.mu.Unlock()
	g.metrics.JobState(string(service.JobQueued))

	go func() {
		defer g.wg.Done()
		g.runJob(job)
	}()
	return job, nil
}

// admit applies global load shedding, then the tenant's own quotas, for
// a submission of n cells. On success the tenant's queued count is
// raised by n; every rejection is counted in pcfleet_shed_total.
func (g *Gateway) admit(ten *tenant.Tenant, n int) error {
	if hw := g.opts.HighWatermark; hw > 0 {
		total := g.disp.queued()
		var reason string
		switch {
		case total+n > 2*hw:
			// Past twice the mark the gateway protects itself from
			// everyone; below it only batch is shed, so interactive work
			// stays admissible while the flood is turned away.
			reason = fmt.Sprintf("gateway overloaded: %d cells queued (hard cap %d)", total, 2*hw)
		case ten.Class() == tenant.Batch && total+n > hw:
			reason = fmt.Sprintf("gateway busy: %d cells queued, batch is shed above %d", total, hw)
		}
		if reason != "" {
			g.metrics.Shed(string(ten.Class()))
			return &tenant.QuotaError{
				Tenant: ten.Name(), Class: ten.Class(),
				Reason: reason, RetryAfter: 2 * time.Second,
			}
		}
	}
	if qe := ten.Admit(n); qe != nil {
		g.metrics.Shed(string(ten.Class()))
		return qe
	}
	return nil
}

// validate mirrors the backend's spec validation where the gateway has
// the information; preset resolution beyond "baseline" is left to the
// backend that receives the forwarded job.
func (g *Gateway) validate(spec *service.JobSpec) error {
	if spec.Preset != "" && spec.Preset != "baseline" {
		known := false
		for _, n := range g.opts.PresetNames {
			if n == spec.Preset {
				known = true
			}
		}
		if !known {
			return fmt.Errorf("unknown preset %q (gateway knows: %s)", spec.Preset, presetList(g.opts.PresetNames))
		}
		// Minimal structural checks; the owning backend validates fully.
		selected := 0
		if spec.Experiment != "" {
			selected++
		}
		if spec.Cell != nil {
			selected++
		}
		if spec.Sweep != nil {
			selected++
		}
		if spec.Program != nil {
			selected++
		}
		if selected != 1 {
			return fmt.Errorf("spec must set exactly one of experiment, cell, sweep, program (got %d)", selected)
		}
		// Mirror the backend rule: a sweep with a preset is always invalid,
		// and skipping Normalize here would scatter an unnormalized sweep
		// (empty bench list, unchecked geometry) into zero cells.
		if spec.Sweep != nil {
			return fmt.Errorf("sweep jobs build their own machines (machine/preset must be unset)")
		}
		return nil
	}
	_, err := spec.Normalize(map[string]*machine.Config{"baseline": machine.Baseline()})
	return err
}

func presetList(names []string) string {
	out := "baseline"
	for _, n := range names {
		out += ", " + n
	}
	return out
}

// Get returns a gateway job by id.
func (g *Gateway) Get(id string) (*fleetJob, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	job, ok := g.jobs[id]
	if !ok {
		return nil, ErrNotFound
	}
	return job, nil
}

// List snapshots all gateway jobs in submission order.
func (g *Gateway) List() []service.JobView {
	g.mu.Lock()
	jobs := append([]*fleetJob(nil), g.order...)
	g.mu.Unlock()
	out := make([]service.JobView, len(jobs))
	for i, j := range jobs {
		out[i] = j.view(false)
	}
	return out
}

// Cancel requests cancellation of a gateway job; in-flight backend
// dispatches observe it through their request contexts.
func (g *Gateway) Cancel(id string) (*fleetJob, error) {
	job, err := g.Get(id)
	if err != nil {
		return nil, err
	}
	job.mu.Lock()
	job.cancelled = true
	state := job.state
	cancel := job.cancel
	job.mu.Unlock()
	if state.Terminal() {
		return job, nil
	}
	if cancel != nil {
		cancel()
	} else {
		job.finish(service.JobCancelled, nil, "cancelled before execution")
		g.metrics.JobState(string(service.JobCancelled))
	}
	return job, nil
}

// gauges samples the live state for /metrics and /healthz.
func (g *Gateway) gauges() FleetGauges {
	g.mu.Lock()
	byState := map[string]int{}
	for _, j := range g.order {
		j.mu.Lock()
		byState[string(j.state)]++
		j.mu.Unlock()
	}
	accepting := g.accepting
	g.mu.Unlock()
	var backends []BackendGauge
	for _, b := range g.pool.all() {
		b.mu.Lock()
		backends = append(backends, BackendGauge{
			URL: b.URL, Healthy: b.healthy, Inflight: b.inflight,
			QueueDepth: b.load.QueueDepth, RemoteInflight: b.load.Inflight,
		})
		b.mu.Unlock()
	}
	var tenants []TenantGauge
	for _, t := range g.tenants.All() {
		tenants = append(tenants, TenantGauge{
			Name: t.Name(), Class: string(t.Class()), Weight: t.Weight(),
			Queued: t.Queued(), Inflight: t.Inflight(),
		})
	}
	return FleetGauges{
		Backends: backends, Tenants: tenants,
		DispatchDepth: g.disp.depths(),
		JobsByState:   byState, Accepting: accepting,
	}
}
