package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"pcoup/internal/service"
)

// startBackend boots one real pcserved (in-process service + HTTP) and
// returns its base URL plus handles for mid-test demolition.
func startBackend(t *testing.T, opts service.Options) (string, *service.Server, *httptest.Server) {
	t.Helper()
	srv := service.New(opts)
	if err := srv.Start(); err != nil {
		t.Fatalf("backend Start: %v", err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
		defer cancel()
		srv.Shutdown(ctx)
	})
	return ts.URL, srv, ts
}

// startGateway builds and starts a gateway over the URLs (with fast
// probes) and serves its handler.
func startGateway(t *testing.T, urls []string, mut func(*Options)) (*Gateway, *httptest.Server) {
	t.Helper()
	opts := Options{
		Pool:          PoolOptions{Backends: urls, ProbeInterval: 100 * time.Millisecond},
		HedgeQuantile: 2, // disabled unless a test opts in
	}
	if mut != nil {
		mut(&opts)
	}
	gw, err := New(opts)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := gw.Start(); err != nil {
		t.Fatalf("gateway Start: %v", err)
	}
	ts := httptest.NewServer(gw.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
		defer cancel()
		gw.Shutdown(ctx)
	})
	return gw, ts
}

func apiJSON(t *testing.T, method, url string, body []byte, wantStatus int, out any) {
	t.Helper()
	req, err := http.NewRequest(method, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		t.Fatalf("%s %s: status %d, want %d; body: %s", method, url, resp.StatusCode, wantStatus, buf.String())
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("%s %s: decoding: %v", method, url, err)
		}
	}
}

func submitJob(t *testing.T, base string, spec service.JobSpec) service.JobView {
	t.Helper()
	body, _ := json.Marshal(spec)
	var view service.JobView
	apiJSON(t, "POST", base+"/v1/jobs", body, http.StatusAccepted, &view)
	return view
}

func waitJob(t *testing.T, base, id string) service.JobView {
	t.Helper()
	deadline := time.Now().Add(4 * time.Minute)
	for {
		var view service.JobView
		apiJSON(t, "GET", base+"/v1/jobs/"+id, nil, http.StatusOK, &view)
		if view.State.Terminal() {
			return view
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s (%d/%d cells)", id, view.State, view.CellsDone, view.CellsTotal)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// streamBytes reads a finished job's full NDJSON stream.
func streamBytes(t *testing.T, base, id string) []byte {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading stream: %v", err)
	}
	return data
}

// metricValue scrapes one labelled-or-not sample from /metrics.
func metricValue(t *testing.T, base, sample string) float64 {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	re := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(sample) + ` (\S+)$`)
	m := re.FindStringSubmatch(buf.String())
	if m == nil {
		t.Fatalf("metric %s not found in:\n%s", sample, buf.String())
	}
	v, err := strconv.ParseFloat(m[1], 64)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

var testSweep = service.SweepSpec{
	Benches: []string{"fft", "matrix"}, MinIU: 1, MaxIU: 3,
}

// TestFleetSweepByteIdentical is the tentpole acceptance test: the same
// sweep through a 2-backend gateway streams byte-identically to a
// single pcserved, and an identical resubmission is served almost
// entirely from the sharded caches (affinity hits).
func TestFleetSweepByteIdentical(t *testing.T) {
	refURL, _, _ := startBackend(t, service.Options{})
	urlA, _, _ := startBackend(t, service.Options{})
	urlB, _, _ := startBackend(t, service.Options{})
	// A high load factor keeps every cell on its ring owner: bounded-load
	// spills would seed the "wrong" backend's cache and make the repeat's
	// hit accounting timing-dependent (spill picking itself is covered
	// deterministically in pool_test.go).
	gw, gwTS := startGateway(t, []string{urlA, urlB}, func(o *Options) {
		o.Pool.LoadFactor = 8
	})

	spec := service.JobSpec{Sweep: &testSweep}

	refDone := waitJob(t, refURL, submitJob(t, refURL, spec).ID)
	if refDone.State != service.JobDone {
		t.Fatalf("reference sweep: %s (%s)", refDone.State, refDone.Error)
	}
	refStream := streamBytes(t, refURL, refDone.ID)

	first := waitJob(t, gwTS.URL, submitJob(t, gwTS.URL, spec).ID)
	if first.State != service.JobDone {
		t.Fatalf("fleet sweep: %s (%s)", first.State, first.Error)
	}
	if first.CacheHit {
		t.Fatal("cold fleet sweep claims a cache hit")
	}
	gwStream := streamBytes(t, gwTS.URL, first.ID)
	if !bytes.Equal(refStream, gwStream) {
		t.Fatalf("fleet stream differs from single-backend stream:\n ref: %q\n gw:  %q", refStream, gwStream)
	}
	if !bytes.Equal(refDone.Result, first.Result) {
		t.Fatalf("fleet merged result differs from single-backend result")
	}

	// Both backends must have received cells (the scatter actually
	// sharded; 18 cells over 2 backends make a one-sided split
	// astronomically unlikely).
	for _, u := range []string{urlA, urlB} {
		if n := metricValue(t, gwTS.URL, `pcfleet_cells_dispatched_total{backend="`+u+`"}`); n == 0 {
			t.Fatalf("backend %s received no cells", u)
		}
	}

	// Resubmission: every cell routes back to its owner and hits its
	// cache.
	lookupsBefore, hitsBefore := gw.Metrics().AffinityStats()
	second := waitJob(t, gwTS.URL, submitJob(t, gwTS.URL, spec).ID)
	if second.State != service.JobDone {
		t.Fatalf("repeat fleet sweep: %s (%s)", second.State, second.Error)
	}
	if !second.CacheHit {
		t.Fatal("repeat fleet sweep not served from backend caches")
	}
	if !bytes.Equal(streamBytes(t, gwTS.URL, second.ID), refStream) {
		t.Fatal("repeat fleet stream differs from reference")
	}
	lookups, hits := gw.Metrics().AffinityStats()
	dl, dh := lookups-lookupsBefore, hits-hitsBefore
	if dl == 0 {
		t.Fatal("repeat sweep recorded no affinity lookups")
	}
	if float64(dh) < 0.9*float64(dl) {
		t.Fatalf("affinity hit ratio on resubmission: %d/%d, want >= 90%%", dh, dl)
	}
}

// TestFleetUnitJobForward: non-sweep jobs forward whole to their
// content-key owner, and the repeat hits the same backend's cache.
func TestFleetUnitJobForward(t *testing.T) {
	refURL, _, _ := startBackend(t, service.Options{})
	urlA, _, _ := startBackend(t, service.Options{})
	urlB, _, _ := startBackend(t, service.Options{})
	_, gwTS := startGateway(t, []string{urlA, urlB}, nil)

	spec := service.JobSpec{Cell: &service.CellSpec{Bench: "matrix", Mode: "SEQ"}}
	ref := waitJob(t, refURL, submitJob(t, refURL, spec).ID)
	got := waitJob(t, gwTS.URL, submitJob(t, gwTS.URL, spec).ID)
	if got.State != service.JobDone {
		t.Fatalf("unit job: %s (%s)", got.State, got.Error)
	}
	if !bytes.Equal(ref.Result, got.Result) {
		t.Fatal("forwarded unit job result differs from direct run")
	}
	repeat := waitJob(t, gwTS.URL, submitJob(t, gwTS.URL, spec).ID)
	if !repeat.CacheHit {
		t.Fatal("repeat unit job missed the owner's cache")
	}
}

// TestFleetFailoverMidSweep kills one of two backends while a sweep is
// in flight: the job must still complete, report every cell, and match
// a single-backend run byte for byte; the gateway must record at least
// one failover.
func TestFleetFailoverMidSweep(t *testing.T) {
	urlA, _, _ := startBackend(t, service.Options{})
	urlB, _, victimTS := startBackend(t, service.Options{})
	gw, gwTS := startGateway(t, []string{urlA, urlB}, nil)

	// ~25 lud cells: slow enough that the kill lands mid-sweep.
	spec := service.JobSpec{Sweep: &service.SweepSpec{Benches: []string{"lud"}, MinIU: 1, MaxIU: 5}}
	job := submitJob(t, gwTS.URL, spec)

	// Wait for the sweep to be genuinely in flight, then kill backend B
	// abruptly (connections torn down, no drain).
	deadline := time.Now().Add(2 * time.Minute)
	for {
		var view service.JobView
		apiJSON(t, "GET", gwTS.URL+"/v1/jobs/"+job.ID, nil, http.StatusOK, &view)
		if view.CellsDone >= 1 {
			break
		}
		if view.State.Terminal() {
			t.Fatalf("sweep finished before the kill: %s", view.State)
		}
		if time.Now().After(deadline) {
			t.Fatal("sweep never made progress")
		}
		time.Sleep(5 * time.Millisecond)
	}
	victimTS.CloseClientConnections()
	victimTS.Close()

	final := waitJob(t, gwTS.URL, job.ID)
	if final.State != service.JobDone {
		t.Fatalf("sweep after backend kill: %s (%s)", final.State, final.Error)
	}
	if final.CellsDone != final.CellsTotal || final.CellsTotal != 25 {
		t.Fatalf("cells %d/%d, want 25/25", final.CellsDone, final.CellsTotal)
	}
	if n := gw.Metrics().Failovers(); n == 0 {
		t.Fatal("no failovers recorded despite a mid-sweep backend kill")
	}
	if up := metricValue(t, gwTS.URL, `pcfleet_backend_up{backend="`+urlB+`"}`); up != 0 {
		t.Fatalf("killed backend still marked up")
	}

	// The surviving backend replays the sweep (mostly from its cache)
	// and must produce the identical stream.
	ref := waitJob(t, urlA, submitJob(t, urlA, spec).ID)
	if ref.State != service.JobDone {
		t.Fatalf("reference sweep on survivor: %s (%s)", ref.State, ref.Error)
	}
	if !bytes.Equal(streamBytes(t, urlA, ref.ID), streamBytes(t, gwTS.URL, job.ID)) {
		t.Fatal("failover stream differs from single-backend stream")
	}
}

// TestSweepFailureDoesNotLeakTenantAccounting: failed sweeps — each
// cell an immediate permanent 400 — must return every queued-cell and
// inflight-cell count to zero. A leak in either would eventually pin
// the tenant against its quotas (or strand tasks in the dispatch
// queues) even though no work is outstanding.
func TestSweepFailureDoesNotLeakTenantAccounting(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(service.Health{Status: "ready", Accepting: true, Workers: 1})
	})
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":"rejected"}`, http.StatusBadRequest)
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)

	gw, _ := startGateway(t, []string{ts.URL}, func(o *Options) {
		o.BackendConcurrency = 2
	})
	ten := gw.Tenants().Default()
	for i := 0; i < 25; i++ {
		job, err := gw.Submit(service.JobSpec{Sweep: &testSweep})
		if err != nil {
			t.Fatal(err)
		}
		<-job.done
		if v := job.view(false); v.State != service.JobFailed {
			t.Fatalf("sweep %d: state %s, want %s", i, v.State, service.JobFailed)
		}
		if n := gw.disp.queued(); n != 0 {
			t.Fatalf("sweep %d left %d tasks in the dispatch queues", i, n)
		}
		if q := ten.Queued(); q != 0 {
			t.Fatalf("sweep %d leaked %d queued-cell count(s)", i, q)
		}
		if inf := ten.Inflight(); inf != 0 {
			t.Fatalf("sweep %d leaked %d inflight-cell count(s)", i, inf)
		}
	}
}

// TestValidateRejectsForeignPresetSweep: a sweep naming a backend-only
// preset must be rejected at the gateway exactly like the backend would
// reject it, not scattered unnormalized into zero cells.
func TestValidateRejectsForeignPresetSweep(t *testing.T) {
	urlA, _, _ := startBackend(t, service.Options{})
	gw, _ := startGateway(t, []string{urlA}, func(o *Options) {
		o.PresetNames = []string{"wide"}
	})
	sw := testSweep
	_, err := gw.Submit(service.JobSpec{Preset: "wide", Sweep: &sw})
	if err == nil {
		t.Fatal("sweep with foreign preset accepted")
	}
	if !strings.Contains(err.Error(), "sweep jobs build their own machines") {
		t.Fatalf("wrong rejection: %v", err)
	}
	// Cell jobs with a known foreign preset still pass the gateway's
	// structural check (the owning backend validates fully).
	if _, err := gw.Submit(service.JobSpec{Preset: "wide"}); err == nil {
		t.Fatal("foreign-preset spec with no work selected was accepted")
	}
}

// TestGatewayReadyz: the gateway reports unready (503) when every
// backend is down, and ready once one is probed back up.
func TestGatewayReadyz(t *testing.T) {
	urlA, _, backendTS := startBackend(t, service.Options{})
	_, gwTS := startGateway(t, []string{urlA}, nil)

	if code := getStatus(t, gwTS.URL+"/readyz"); code != http.StatusOK {
		t.Fatalf("readyz with healthy backend: %d", code)
	}
	backendTS.CloseClientConnections()
	backendTS.Close()
	deadline := time.Now().Add(30 * time.Second)
	for getStatus(t, gwTS.URL+"/readyz") != http.StatusServiceUnavailable {
		if time.Now().After(deadline) {
			t.Fatal("readyz never turned 503 after the only backend died")
		}
		time.Sleep(20 * time.Millisecond)
	}
	// Liveness is unaffected.
	if code := getStatus(t, gwTS.URL+"/healthz"); code != http.StatusOK {
		t.Fatalf("healthz: %d, want 200", code)
	}
}

func getStatus(t *testing.T, url string) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	resp.Body.Close()
	return resp.StatusCode
}
