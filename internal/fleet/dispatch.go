package fleet

import (
	"bufio"
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"pcoup/internal/machine"
	"pcoup/internal/service"
)

// maxDispatchBackoff caps the failover backoff between attempts of one
// cell (same cap as the service journal's retry backoff).
const maxDispatchBackoff = 30 * time.Second

// permanentError marks a dispatch failure that would recur on every
// backend (a deterministic simulation error, a rejected spec): failover
// must not retry it.
type permanentError struct{ err error }

func (e permanentError) Error() string { return e.err.Error() }
func (e permanentError) Unwrap() error { return e.err }

// budgetExceededError marks a backend job that finished in the
// budget_exceeded state (the simulation hit its cycle budget). It is
// permanent — every backend would run out identically — and the gateway
// job mirrors the backend's terminal state instead of reporting failed.
type budgetExceededError struct{ msg string }

func (e budgetExceededError) Error() string { return e.msg }

// runJob executes one gateway job end to end.
func (g *Gateway) runJob(job *fleetJob) {
	job.mu.Lock()
	if job.state.Terminal() { // cancelled while queued
		job.mu.Unlock()
		return
	}
	job.state = service.JobRunning
	job.started = time.Now()
	ctx, cancel := context.WithCancel(g.baseCtx)
	job.cancel = cancel
	alreadyCancelled := job.cancelled
	job.notifyLocked()
	job.mu.Unlock()
	defer cancel()
	g.metrics.JobState(string(service.JobRunning))
	if alreadyCancelled {
		cancel()
	}

	var payload json.RawMessage
	var err error
	if job.spec.Sweep != nil {
		payload, err = g.runSweepJob(ctx, job)
	} else {
		payload, err = g.runUnitJob(ctx, job)
	}

	var state service.JobState
	var errMsg string
	var be budgetExceededError
	switch {
	case err == nil:
		state = service.JobDone
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		state = service.JobCancelled
		errMsg = "cancelled"
	case errors.As(err, &be):
		state = service.JobBudgetExceeded
		errMsg = err.Error()
	default:
		state = service.JobFailed
		errMsg = err.Error()
	}
	job.finish(state, payload, errMsg)
	g.metrics.JobState(string(state))
}

// runSweepJob scatters the sweep's cells into the tenant-fair dispatch
// queues (each cell at its content key's ring owner) and gathers the
// results back in grid order, so the merged payload and the NDJSON
// stream are byte-identical to a single backend's.
func (g *Gateway) runSweepJob(ctx context.Context, job *fleetJob) (json.RawMessage, error) {
	sw := job.spec.Sweep
	cells := sw.Cells()
	job.mu.Lock()
	job.total = len(cells)
	job.mu.Unlock()

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	// Buffered to len(cells): workers never block delivering, even if
	// this consumer has already bailed.
	resCh := make(chan taskResult, len(cells))
	tasks := make([]*task, 0, len(cells))
	for i, c := range cells {
		specJSON, err := json.Marshal(service.JobSpec{
			Sweep:     sw.SingleCellSweep(c),
			Options:   job.spec.Options,
			TimeoutMS: job.spec.TimeoutMS,
		})
		if err != nil {
			job.tenant.SubQueued(len(cells)) // nothing was enqueued
			return nil, err
		}
		key, err := service.SweepCellContentKey(c, sw.Mode, job.spec.Options)
		if err != nil {
			job.tenant.SubQueued(len(cells))
			return nil, err
		}
		tasks = append(tasks, &task{
			ctx: ctx, ten: job.tenant, key: key, content: true,
			specJSON: specJSON, index: i,
			owner: g.pool.ownerURL(key), resCh: resCh,
		})
	}
	g.disp.enqueue(tasks)

	// Single consumer: exactly len(cells) results arrive (cancelled
	// tasks deliver their context error), so every queued cell is
	// accounted for before the job finishes.
	results := make([]json.RawMessage, len(cells))
	allHit := true
	nextEmit := 0
	var firstErr error
	for done := 0; done < len(cells); done++ {
		res := <-resCh
		if res.err != nil {
			if firstErr == nil {
				c := cells[res.index]
				firstErr = fmt.Errorf("sweep %s %diu %dfpu: %w", c.Bench, c.IU, c.FPU, res.err)
				cancel() // abandon the remaining cells
			}
			continue
		}
		results[res.index] = res.payload
		if !res.hit {
			allHit = false
		}
		for nextEmit < len(results) && results[nextEmit] != nil {
			job.appendCell(results[nextEmit])
			nextEmit++
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	job.mu.Lock()
	job.hit = allHit
	job.mu.Unlock()
	return service.MergeSweepPayload(sw, results)
}

// runUnitJob forwards a whole cell/experiment job through the dispatch
// queue of its content-key owner.
func (g *Gateway) runUnitJob(ctx context.Context, job *fleetJob) (json.RawMessage, error) {
	specJSON, err := json.Marshal(job.spec)
	if err != nil {
		job.tenant.SubQueued(1)
		return nil, err
	}
	key, content := routeKey(&job.spec)
	resCh := make(chan taskResult, 1)
	g.disp.enqueue([]*task{{
		ctx: ctx, ten: job.tenant, key: key, content: content,
		specJSON: specJSON, owner: g.pool.ownerURL(key), resCh: resCh,
	}})
	res := <-resCh
	if res.err != nil {
		return nil, res.err
	}
	job.mu.Lock()
	job.hit = res.hit
	job.mu.Unlock()
	return res.payload, nil
}

// worker drains one backend's dispatch queue until the dispatcher
// closes. The queue hands it cache-affine work first and stolen chunks
// from saturated peers when its own queue runs dry.
func (g *Gateway) worker(b *Backend) {
	defer g.workerWg.Done()
	for {
		t := g.disp.next(b.URL)
		if t == nil {
			return
		}
		if err := t.ctx.Err(); err != nil {
			// Cancelled while queued: deliver without dispatching so the
			// job's gather loop still sees every cell.
			t.resCh <- taskResult{index: t.index, err: err}
		} else {
			payload, hit, err := g.dispatchTask(t, b)
			t.resCh <- taskResult{index: t.index, payload: payload, hit: hit, err: err}
		}
		g.disp.complete(t)
	}
}

// dispatchTask executes one queued task from backend b's worker:
// peer-fill cache probes first, then the hedged, failing-over dispatch
// loop.
func (g *Gateway) dispatchTask(t *task, b *Backend) (json.RawMessage, bool, error) {
	if payload, ok := g.peerFill(t, b); ok {
		return payload, true, nil
	}
	return g.dispatch(t, b)
}

// peerFill tries to serve a content-keyed task straight from a backend
// cache before computing anything. For a task served by its own queue,
// that is the owner's cache (the affinity payoff) and then the next
// ring node's — where bounded-load spill, failover, and hedging would
// have left a copy. For a stolen task, it is the thief's own cache
// (spills and past steals leave copies off-owner) and then the original
// owner's, so rebalancing warm work does not recompute it. Results are
// content-addressed and deterministic, so the probed bytes are
// identical to a recompute.
func (g *Gateway) peerFill(t *task, b *Backend) (json.RawMessage, bool) {
	if !t.content || g.opts.NoPeerFill {
		return nil, false
	}
	if b.URL == t.owner {
		if payload, ok := g.cacheProbe(t.ctx, b, t.key); ok {
			g.metrics.Affinity(true)
			return payload, true
		}
		if peer := g.nextRingPeer(t.key, b.URL); peer != nil {
			if payload, ok := g.cacheProbe(t.ctx, peer, t.key); ok {
				g.metrics.PeerFillHit()
				return payload, true
			}
		}
		return nil, false
	}
	if payload, ok := g.cacheProbe(t.ctx, b, t.key); ok {
		g.metrics.PeerFillHit()
		return payload, true
	}
	if owner := g.pool.get(t.owner); owner != nil && owner.Healthy() {
		if payload, ok := g.cacheProbe(t.ctx, owner, t.key); ok {
			g.metrics.PeerFillHit()
			return payload, true
		}
	}
	return nil, false
}

// cacheProbe GETs one backend's cache entry for key; any failure is a
// miss (the task just computes normally).
func (g *Gateway) cacheProbe(ctx context.Context, b *Backend, key string) (json.RawMessage, bool) {
	if !b.Healthy() {
		return nil, false
	}
	req, err := http.NewRequestWithContext(ctx, "GET", b.URL+"/v1/cache/"+key, nil)
	if err != nil {
		return nil, false
	}
	resp, err := g.probe.Do(req)
	if err != nil {
		return nil, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, false
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil || len(data) == 0 {
		return nil, false
	}
	return json.RawMessage(data), true
}

// nextRingPeer returns the first healthy backend after owner in the
// key's ring order (the spill/failover target most likely to hold a
// stray copy).
func (g *Gateway) nextRingPeer(key, ownerURL string) *Backend {
	for _, url := range g.pool.seq(key) {
		if url == ownerURL {
			continue
		}
		if b := g.pool.get(url); b != nil && b.Healthy() {
			return b
		}
	}
	return nil
}

// routeKey maps a non-sweep spec to its routing key: the result's
// content address when the gateway can compute it (so the job lands
// where its cache entry lives, reported true), else a hash of the
// canonical spec (false: not probeable against backend caches).
func routeKey(spec *service.JobSpec) (string, bool) {
	var cfg *machine.Config
	resolvable := true
	switch {
	case spec.Machine != nil:
		cfg = spec.Machine
	case spec.Preset == "" || spec.Preset == "baseline":
		cfg = nil // backends default to baseline
	default:
		resolvable = false // foreign preset: only the backend can resolve it
	}
	if resolvable {
		switch {
		case spec.Cell != nil:
			if k, err := service.CellContentKey(spec.Cell.Bench, spec.Cell.Mode, cfg, spec.Options); err == nil {
				return k, true
			}
		case spec.Experiment != "":
			if k, err := service.ExperimentContentKey(spec.Experiment, cfg, spec.Options); err == nil {
				return k, true
			}
		case spec.Program != nil:
			if k, err := service.ProgramContentKey(spec.Program, cfg, spec.Options); err == nil {
				return k, true
			}
		}
	}
	data, _ := json.Marshal(spec)
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:]), false
}

// dispatch runs one task against the fleet: the worker's own backend
// first (it is the queue owner or the thief — either way the planned
// placement), then failover with bounded-load re-picks, hedged
// execution, and backoff across the retry budget.
func (g *Gateway) dispatch(t *task, worker *Backend) (json.RawMessage, bool, error) {
	ctx := t.ctx
	exclude := map[string]bool{}
	var lastErr error
	for attempt := 0; attempt < g.opts.RetryBudget; attempt++ {
		if attempt > 0 {
			g.metrics.Failover()
			select {
			case <-time.After(dispatchBackoff(g.opts.RetryBackoff, attempt)):
			case <-ctx.Done():
				return nil, false, ctx.Err()
			}
		}
		var backend *Backend
		var spilled bool
		if attempt == 0 && worker != nil && worker.Healthy() {
			backend = worker
		} else {
			var err error
			backend, spilled, err = g.pool.pick(t.key, exclude)
			if errors.Is(err, ErrNoBackends) && len(exclude) > 0 {
				// Every untried backend is down; widen the net and let the
				// prober re-admit whatever recovers.
				exclude = map[string]bool{}
				backend, spilled, err = g.pool.pick(t.key, exclude)
			}
			if err != nil {
				lastErr = err
				continue
			}
		}
		if spilled {
			g.metrics.Spilled()
		}
		payload, hit, err := g.hedged(ctx, backend, t)
		switch {
		case err == nil:
			g.metrics.Affinity(hit)
			return payload, hit, nil
		case ctx.Err() != nil:
			return nil, false, ctx.Err()
		default:
			var perm permanentError
			if errors.As(err, &perm) {
				return nil, false, perm.err
			}
			lastErr = err
			exclude[backend.URL] = true
		}
	}
	if lastErr == nil {
		lastErr = ErrNoBackends
	}
	return nil, false, fmt.Errorf("after %d attempts: %w", g.opts.RetryBudget, lastErr)
}

// dispatchBackoff mirrors the service journal's exponential retry
// backoff: base doubling per extra attempt, capped.
func dispatchBackoff(base time.Duration, attempt int) time.Duration {
	d := base
	for i := 1; i < attempt; i++ {
		d *= 2
		if d >= maxDispatchBackoff {
			return maxDispatchBackoff
		}
	}
	if d > maxDispatchBackoff {
		d = maxDispatchBackoff
	}
	return d
}

// attemptResult is one backend attempt's outcome.
type attemptResult struct {
	payload json.RawMessage
	hit     bool
	err     error
	hedge   bool // produced by the hedged duplicate
}

// hedged runs one attempt on the picked backend and, if it straggles
// past the hedge quantile of recently completed cells, launches one
// duplicate on the next ring node. The first result wins; the loser's
// backend job is cancelled (safe: results are deterministic and
// content-addressed, so both would return identical bytes).
func (g *Gateway) hedged(ctx context.Context, primary *Backend, t *task) (json.RawMessage, bool, error) {
	start := time.Now()
	actx, acancel := context.WithCancel(ctx)
	defer acancel()
	results := make(chan attemptResult, 2)
	go func() {
		payload, hit, err := g.attempt(actx, primary, t)
		results <- attemptResult{payload, hit, err, false}
	}()

	hedgeDelay, ok := g.hedgeDelay()
	if !ok {
		res := <-results
		if res.err == nil {
			g.sampler.record(time.Since(start))
		}
		return res.payload, res.hit, res.err
	}

	timer := time.NewTimer(hedgeDelay)
	defer timer.Stop()
	hcancel := context.CancelFunc(nil)
	launched := false
	for {
		select {
		case res := <-results:
			if res.err != nil && launched {
				// One racer failed; give the other a bounded grace to
				// succeed. The dispatch client has no timeout, so waiting
				// unboundedly here would let a hung second backend pin the
				// cell (and its retry budget) until the whole job dies.
				grace := time.NewTimer(hedgeDelay)
				select {
				case second := <-results:
					if second.err == nil {
						res = second
					}
				case <-grace.C:
				case <-ctx.Done():
				}
				grace.Stop()
			}
			if res.err == nil {
				g.sampler.record(time.Since(start))
				if res.hedge {
					g.metrics.HedgeWon()
				}
				// Cancel the loser: its deferred cleanup DELETEs the
				// backend job it may still be running.
				acancel()
				if hcancel != nil {
					hcancel()
				}
			}
			return res.payload, res.hit, res.err
		case <-timer.C:
			if launched {
				continue
			}
			hedgeBackend, _, err := g.pool.pick(t.key, map[string]bool{primary.URL: true})
			if err != nil {
				continue // nowhere to hedge; keep waiting on the primary
			}
			launched = true
			g.metrics.HedgeFired()
			var hctx context.Context
			hctx, hcancel = context.WithCancel(ctx)
			defer hcancel()
			go func() {
				payload, hit, err := g.attempt(hctx, hedgeBackend, t)
				results <- attemptResult{payload, hit, err, true}
			}()
		}
	}
}

// hedgeDelay returns how long to wait before duplicating a straggler:
// the configured quantile of recent cell latencies, once enough samples
// exist.
func (g *Gateway) hedgeDelay() (time.Duration, bool) {
	if g.opts.HedgeQuantile <= 0 || g.opts.HedgeQuantile >= 1 {
		return 0, false
	}
	d, n := g.sampler.quantile(g.opts.HedgeQuantile)
	if n < g.opts.HedgeMinSamples {
		return 0, false
	}
	if d < g.opts.HedgeMinDelay {
		d = g.opts.HedgeMinDelay
	}
	return d, true
}

// attempt submits specJSON to one backend, follows its NDJSON stream to
// the terminal line, and fetches the final view for cache-hit
// accounting. On cancellation after submission the backend job is
// cancelled best-effort.
func (g *Gateway) attempt(ctx context.Context, b *Backend, t *task) (json.RawMessage, bool, error) {
	b.acquire()
	defer b.release()
	g.metrics.Dispatched(b.URL)

	view, err := g.submitRemote(ctx, b, t)
	if err != nil {
		return nil, false, err
	}
	remoteID := view.ID
	defer func() {
		if ctx.Err() != nil && remoteID != "" {
			go g.cancelRemote(b, remoteID)
		}
	}()

	lines, state, errMsg, err := g.followStream(ctx, b, remoteID)
	if err != nil {
		// A dead mid-job stream means the backend is gone — unless we
		// cancelled the request ourselves (hedge loser, job cancel),
		// which says nothing about the backend's health.
		if ctx.Err() == nil {
			g.pool.markDown(b, err)
		}
		return nil, false, err
	}
	switch state {
	case service.JobDone:
	case service.JobFailed:
		// Deterministic failure: every backend would fail identically.
		return nil, false, permanentError{fmt.Errorf("backend %s: %s", b.URL, errMsg)}
	case service.JobBudgetExceeded:
		// Equally deterministic, but surfaced as its own terminal state.
		return nil, false, permanentError{budgetExceededError{errMsg}}
	default: // cancelled remotely (backend draining): retry elsewhere
		return nil, false, fmt.Errorf("backend %s: job %s", b.URL, state)
	}
	if len(lines) != 1 {
		return nil, false, fmt.Errorf("backend %s: %d data lines, want 1", b.URL, len(lines))
	}
	final, err := g.fetchView(ctx, b, remoteID)
	if err != nil {
		// The payload is already complete; treat hit accounting as best
		// effort.
		return lines[0], false, nil
	}
	return lines[0], final.CacheHit, nil
}

// submitRemote POSTs one job and decodes the accepted view. The
// tenant's name rides along in X-PC-Tenant so backend journals, access
// logs, and per-tenant counters attribute the work.
func (g *Gateway) submitRemote(ctx context.Context, b *Backend, t *task) (*service.JobView, error) {
	req, err := http.NewRequestWithContext(ctx, "POST", b.URL+"/v1/jobs", bytes.NewReader(t.specJSON))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	if t.ten != nil {
		req.Header.Set("X-PC-Tenant", t.ten.Name())
	}
	resp, err := g.client.Do(req)
	if err != nil {
		if ctx.Err() == nil {
			g.pool.markDown(b, err)
		}
		return nil, err
	}
	defer resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusAccepted:
	case resp.StatusCode == http.StatusBadRequest, resp.StatusCode == http.StatusUnprocessableEntity:
		// 422: the backend rejected the program content itself — every
		// backend would, so failover is pointless.
		return nil, permanentError{fmt.Errorf("backend %s: %s", b.URL, readError(resp))}
	default:
		// 503 (draining, queue full) and 5xx: transient, try elsewhere.
		return nil, fmt.Errorf("backend %s: %s", b.URL, readError(resp))
	}
	var view service.JobView
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		return nil, fmt.Errorf("backend %s: decoding submit: %w", b.URL, err)
	}
	return &view, nil
}

// followStream reads a backend job's NDJSON stream to EOF: data lines,
// then the terminal status line.
func (g *Gateway) followStream(ctx context.Context, b *Backend, id string) (lines []json.RawMessage, state service.JobState, errMsg string, err error) {
	req, err := http.NewRequestWithContext(ctx, "GET", b.URL+"/v1/jobs/"+id+"/stream", nil)
	if err != nil {
		return nil, "", "", err
	}
	resp, err := g.client.Do(req)
	if err != nil {
		return nil, "", "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, "", "", fmt.Errorf("stream: %s", readError(resp))
	}
	rd := bufio.NewReader(resp.Body)
	var raw [][]byte
	for {
		line, err := rd.ReadBytes('\n')
		line = bytes.TrimSuffix(line, []byte("\n"))
		if len(line) > 0 {
			raw = append(raw, line)
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, "", "", err
		}
	}
	if len(raw) == 0 {
		return nil, "", "", errors.New("stream: empty")
	}
	var status struct {
		State service.JobState `json:"state"`
		Error string           `json:"error,omitempty"`
	}
	last := raw[len(raw)-1]
	if err := json.Unmarshal(last, &status); err != nil || status.State == "" {
		return nil, "", "", fmt.Errorf("stream: truncated (no status line)")
	}
	for _, l := range raw[:len(raw)-1] {
		lines = append(lines, json.RawMessage(l))
	}
	return lines, status.State, status.Error, nil
}

// fetchView GETs one backend job view.
func (g *Gateway) fetchView(ctx context.Context, b *Backend, id string) (*service.JobView, error) {
	req, err := http.NewRequestWithContext(ctx, "GET", b.URL+"/v1/jobs/"+id, nil)
	if err != nil {
		return nil, err
	}
	resp, err := g.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("get %s: %s", id, resp.Status)
	}
	var view service.JobView
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		return nil, err
	}
	return &view, nil
}

// cancelRemote best-effort DELETEs a backend job (hedge losers, gateway
// cancellations).
func (g *Gateway) cancelRemote(b *Backend, id string) {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, "DELETE", b.URL+"/v1/jobs/"+id, nil)
	if err != nil {
		return
	}
	resp, err := g.client.Do(req)
	if err != nil {
		return
	}
	resp.Body.Close()
}

// readError renders a non-2xx response body.
func readError(resp *http.Response) string {
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	var eb struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(data, &eb) == nil && eb.Error != "" {
		return fmt.Sprintf("%s: %s", resp.Status, eb.Error)
	}
	return fmt.Sprintf("%s: %s", resp.Status, bytes.TrimSpace(data))
}

// latencySampler keeps a sliding window of completed-cell latencies for
// the hedging quantile. quantile is consulted once per dispatched cell,
// so its result is cached and recomputed at most once every
// samplerRefresh records — the hedge delay tolerates slightly stale
// estimates, but not a copy+sort of the whole window per cell.
type latencySampler struct {
	mu   sync.Mutex
	buf  []time.Duration
	next int
	n    int

	// Quantile cache: valid until samplerRefresh more records arrive or
	// a different q is requested. scratch is the reusable sort buffer.
	cacheQ     float64
	cacheVal   time.Duration
	cacheValid bool
	sinceCalc  int
	scratch    []time.Duration
}

const (
	samplerWindow = 256
	// samplerRefresh bounds cache staleness: at most this many new
	// samples land between quantile recomputations.
	samplerRefresh = 16
)

func newLatencySampler() *latencySampler {
	return &latencySampler{
		buf:     make([]time.Duration, samplerWindow),
		scratch: make([]time.Duration, 0, samplerWindow),
	}
}

func (s *latencySampler) record(d time.Duration) {
	s.mu.Lock()
	s.buf[s.next] = d
	s.next = (s.next + 1) % len(s.buf)
	if s.n < len(s.buf) {
		s.n++
	}
	s.sinceCalc++
	if s.sinceCalc >= samplerRefresh {
		s.cacheValid = false
	}
	s.mu.Unlock()
}

// quantile returns the q-quantile of the window and the current sample
// count. The count is always live (never cached) so HedgeMinSamples
// gating stays exact; the quantile value may lag by up to
// samplerRefresh records.
func (s *latencySampler) quantile(q float64) (time.Duration, int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.n == 0 {
		return 0, 0
	}
	if s.cacheValid && s.cacheQ == q {
		return s.cacheVal, s.n
	}
	window := append(s.scratch[:0], s.buf[:s.n]...)
	sort.Slice(window, func(i, j int) bool { return window[i] < window[j] })
	idx := int(q * float64(s.n))
	if idx >= s.n {
		idx = s.n - 1
	}
	s.cacheQ, s.cacheVal, s.cacheValid, s.sinceCalc = q, window[idx], true, 0
	return window[idx], s.n
}
