package fleet

import (
	"context"
	"sync"

	"pcoup/internal/tenant"
)

// The dispatcher replaces PR 5's global inflight semaphore with
// per-backend queues drained by worker goroutines. Placement stays
// static — each task is enqueued at its content key's ring owner, so
// cache affinity is the common case — while arbitration is dynamic:
//
//   - Within a backend queue, tenants are served by weighted deficit
//     round robin (DRR) under strict priority classes (interactive
//     before batch), so one tenant's flood interleaves fairly with
//     everyone else instead of forming a FIFO convoy.
//   - A tenant at its MaxInflightCells cap is skipped without consuming
//     its deficit; its cells wait queued while others proceed.
//   - When a backend's workers run dry they steal a chunk of queued
//     cells from the tail of the deepest other queue. Tail-stealing
//     preserves the victim's head-of-queue cache locality (the head is
//     what its own workers reach next); the peer-fill probe in
//     dispatchTask keeps stolen warm cells from being recomputed.
//
// This mirrors the paper's split: the ring is the compile-time
// placement, DRR + stealing are the runtime arbitration.

// defaultStealChunk bounds how many cells move per steal. Chunked
// stealing amortizes the lock while leaving work behind for the
// victim's own (cache-warm) workers.
const defaultStealChunk = 8

// taskResult is delivered to the job's single consumer goroutine.
type taskResult struct {
	index   int // cell index within the sweep (0 for unit jobs)
	payload []byte
	hit     bool
	err     error
}

// task is one dispatchable cell (or unit job).
type task struct {
	ctx      context.Context
	ten      *tenant.Tenant
	key      string // routing/cache key
	content  bool   // key is a content key usable against /v1/cache/
	specJSON []byte
	index    int
	owner    string // backend URL the task was originally queued at
	acquired bool   // holds a tenant inflight slot (set at pop)
	resCh    chan taskResult
}

// tenantQueue is one tenant's FIFO of tasks within a class, plus its
// DRR deficit counter.
type tenantQueue struct {
	ten     *tenant.Tenant
	deficit int
	tasks   []*task
}

// classQueue holds the active tenants of one priority class in rotor
// order.
type classQueue struct {
	active []*tenantQueue
	byName map[string]*tenantQueue
	rotor  int
}

func newClassQueue() *classQueue {
	return &classQueue{byName: map[string]*tenantQueue{}}
}

func (cq *classQueue) push(t *task) {
	tq := cq.byName[t.ten.Name()]
	if tq == nil {
		tq = &tenantQueue{ten: t.ten}
		cq.byName[t.ten.Name()] = tq
		cq.active = append(cq.active, tq)
	}
	tq.tasks = append(tq.tasks, t)
}

// remove drops an emptied tenant queue, keeping the rotor pointed at
// the same successor.
func (cq *classQueue) remove(i int) {
	tq := cq.active[i]
	tq.deficit = 0
	delete(cq.byName, tq.ten.Name())
	cq.active = append(cq.active[:i], cq.active[i+1:]...)
	if cq.rotor > i {
		cq.rotor--
	}
	if len(cq.active) > 0 {
		cq.rotor %= len(cq.active)
	} else {
		cq.rotor = 0
	}
}

// backendQueue is the per-backend dispatch queue: one classQueue per
// priority class under DRR, or a plain FIFO deque in fifo mode.
type backendQueue struct {
	classes [tenant.NumClasses]*classQueue
	fifo    []*task
	depth   int
}

// dispatcher owns every backend queue. One mutex guards them all: the
// critical sections are pointer shuffles, and cross-queue stealing
// needs a consistent view anyway.
type dispatcher struct {
	mu      sync.Mutex
	cond    *sync.Cond
	queues  map[string]*backendQueue
	order   []string // stable iteration order for stealing
	drr     bool
	chunk   int
	closed  bool
	total   int
	metrics *Metrics
}

func newDispatcher(backends []string, drr bool, stealChunk int, m *Metrics) *dispatcher {
	if stealChunk <= 0 {
		stealChunk = defaultStealChunk
	}
	d := &dispatcher{
		queues:  make(map[string]*backendQueue, len(backends)),
		drr:     drr,
		chunk:   stealChunk,
		metrics: m,
	}
	d.cond = sync.NewCond(&d.mu)
	for _, url := range backends {
		if _, dup := d.queues[url]; dup {
			continue
		}
		d.queues[url] = &backendQueue{}
		d.order = append(d.order, url)
		if drr {
			for i := range d.queues[url].classes {
				d.queues[url].classes[i] = newClassQueue()
			}
		}
	}
	return d
}

// enqueue adds tasks to their owners' queues. Unknown owners (should
// not happen: owners come from the same backend list) fall back to the
// first queue.
func (d *dispatcher) enqueue(tasks []*task) {
	d.mu.Lock()
	for _, t := range tasks {
		bq := d.queues[t.owner]
		if bq == nil {
			t.owner = d.order[0]
			bq = d.queues[t.owner]
		}
		if d.drr {
			bq.classes[t.ten.Class().Index()].push(t)
		} else {
			bq.fifo = append(bq.fifo, t)
		}
		bq.depth++
		d.total++
	}
	d.mu.Unlock()
	d.cond.Broadcast()
}

// next blocks until a task is available for the given backend's
// workers — from its own queue, or stolen — or the dispatcher closes
// (nil return).
func (d *dispatcher) next(url string) *task {
	d.mu.Lock()
	defer d.mu.Unlock()
	for {
		if d.closed {
			return nil
		}
		if t := d.popLocked(url); t != nil {
			return t
		}
		d.cond.Wait()
	}
}

// popLocked takes the next task for url: own queue first, then one
// steal attempt followed by a retry of the own queue.
func (d *dispatcher) popLocked(url string) *task {
	bq := d.queues[url]
	if bq == nil {
		return nil
	}
	if t := d.popQueueLocked(bq); t != nil {
		return t
	}
	if bq.depth == 0 && d.stealLocked(url) {
		return d.popQueueLocked(bq)
	}
	return nil
}

func (d *dispatcher) popQueueLocked(bq *backendQueue) *task {
	if !d.drr {
		for len(bq.fifo) > 0 {
			t := bq.fifo[0]
			bq.fifo = bq.fifo[1:]
			d.taskPoppedLocked(bq, t)
			// FIFO mode keeps the inflight gauge but does not gate on
			// quota — matching the pre-tenant fleet semantics.
			t.ten.AcquireInflight()
			t.acquired = true
			return t
		}
		return nil
	}
	for _, cq := range bq.classes {
		if t := d.popClassLocked(bq, cq); t != nil {
			return t
		}
	}
	return nil
}

// popClassLocked runs one DRR scan over the class's tenants. Weights
// are >= 1, so a single refill always yields a serviceable deficit: the
// scan visits at most 2n+1 queues. Quota-blocked tenants are skipped
// without consuming deficit, so they resume at full share once slots
// free up.
func (d *dispatcher) popClassLocked(bq *backendQueue, cq *classQueue) *task {
	n := len(cq.active)
	if n == 0 {
		return nil
	}
	for visits := 0; visits <= 2*n; visits++ {
		if len(cq.active) == 0 {
			return nil
		}
		i := cq.rotor % len(cq.active)
		tq := cq.active[i]
		if tq.deficit < 1 {
			tq.deficit += tq.ten.Weight()
			cq.rotor = (i + 1) % len(cq.active)
			continue
		}
		if !tq.ten.TryAcquireInflight() {
			cq.rotor = (i + 1) % len(cq.active)
			continue
		}
		tq.deficit--
		t := tq.tasks[0]
		tq.tasks = tq.tasks[1:]
		if len(tq.tasks) == 0 {
			cq.remove(i)
		}
		d.taskPoppedLocked(bq, t)
		t.acquired = true
		return t
	}
	return nil
}

func (d *dispatcher) taskPoppedLocked(bq *backendQueue, t *task) {
	bq.depth--
	d.total--
	t.ten.SubQueued(1)
}

// stealLocked moves up to chunk tasks from the tail of the deepest
// other backend queue into url's queue. Returns true if anything moved.
func (d *dispatcher) stealLocked(url string) bool {
	var victim *backendQueue
	for _, other := range d.order {
		if other == url {
			continue
		}
		oq := d.queues[other]
		// Leave singleton queues alone: the victim's own worker is
		// about to take that task, and moving it would only trade one
		// cache-affine dispatch for a cold one.
		if oq.depth < 2 {
			continue
		}
		if victim == nil || oq.depth > victim.depth {
			victim = oq
		}
	}
	if victim == nil {
		return false
	}
	want := d.chunk
	if half := victim.depth / 2; want > half {
		want = half
	}
	if want < 1 {
		want = 1
	}
	stolen := d.takeTailLocked(victim, want)
	if len(stolen) == 0 {
		return false
	}
	thief := d.queues[url]
	for _, t := range stolen {
		if d.drr {
			thief.classes[t.ten.Class().Index()].push(t)
		} else {
			thief.fifo = append(thief.fifo, t)
		}
		thief.depth++
	}
	if d.metrics != nil {
		d.metrics.Stole(len(stolen))
	}
	return true
}

// takeTailLocked removes up to n tasks from the tail of a queue,
// preferring batch-class work (interactive cells keep their affinity).
// Quota-blocked tenants are skipped: stealing their cells would just
// park them, blocked, in the thief's queue.
func (d *dispatcher) takeTailLocked(bq *backendQueue, n int) []*task {
	var out []*task
	if !d.drr {
		for len(out) < n && len(bq.fifo) > 0 {
			t := bq.fifo[len(bq.fifo)-1]
			bq.fifo = bq.fifo[:len(bq.fifo)-1]
			out = append(out, t)
			bq.depth--
		}
		return out
	}
	// Scan classes lowest-priority first so batch is stolen before
	// interactive.
	for ci := len(bq.classes) - 1; ci >= 0 && len(out) < n; ci-- {
		cq := bq.classes[ci]
		for i := len(cq.active) - 1; i >= 0 && len(out) < n; i-- {
			tq := cq.active[i]
			if tq.ten.Inflight() > 0 && !d.tenantHasSlack(tq.ten) {
				continue
			}
			for len(out) < n && len(tq.tasks) > 0 {
				t := tq.tasks[len(tq.tasks)-1]
				tq.tasks = tq.tasks[:len(tq.tasks)-1]
				out = append(out, t)
				bq.depth--
			}
			if len(tq.tasks) == 0 {
				cq.remove(i)
			}
		}
	}
	return out
}

// tenantHasSlack reports whether the tenant can plausibly dispatch more
// cells right now (not pinned at its inflight cap).
func (d *dispatcher) tenantHasSlack(t *tenant.Tenant) bool {
	ok := t.TryAcquireInflight()
	if ok {
		t.ReleaseInflight()
	}
	return ok
}

// complete releases the task's tenant inflight slot and wakes workers
// whose tenants may have been quota-blocked on it.
func (d *dispatcher) complete(t *task) {
	if t.acquired {
		t.ten.ReleaseInflight()
		t.acquired = false
		d.cond.Broadcast()
	}
}

// queued returns the total queued (admitted, undispatched) cell count.
func (d *dispatcher) queued() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.total
}

// depths snapshots per-backend queue depths for /metrics.
func (d *dispatcher) depths() map[string]int {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make(map[string]int, len(d.queues))
	for url, bq := range d.queues {
		out[url] = bq.depth
	}
	return out
}

// close wakes every worker with a nil task.
func (d *dispatcher) close() {
	d.mu.Lock()
	d.closed = true
	d.mu.Unlock()
	d.cond.Broadcast()
}
