package fleet

import (
	"encoding/json"
	"errors"
	"net/http"
	"strconv"

	"pcoup/internal/service"
	"pcoup/internal/tenant"
)

// Handler returns the gateway's HTTP API — the same surface as one
// pcserved, so pcq and every other client work unchanged:
//
//	POST   /v1/jobs             submit a job (202 + job view)
//	POST   /v1/programs         compile-and-run an untrusted source program (202; 422 on rejection)
//	GET    /v1/jobs             list gateway jobs
//	GET    /v1/jobs/{id}        job status; includes result when done
//	DELETE /v1/jobs/{id}        cancel a queued or running job
//	GET    /v1/jobs/{id}/stream NDJSON: per-cell results as they finish
//	GET    /healthz             liveness: always 200, with backend summary
//	GET    /readyz              readiness: 503 while draining or no backend is healthy
//	GET    /metrics             Prometheus text exposition
//
// When the gateway runs with a tenant file, every job route requires a
// valid API key (Authorization: Bearer <key> or X-PC-Tenant-Key) and
// answers 401 otherwise. /healthz, /readyz and /metrics stay open —
// probes and scrapers don't carry tenant identity.
func (g *Gateway) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", g.withTenant(g.handleSubmit))
	mux.HandleFunc("POST /v1/programs", g.withTenant(g.handleProgram))
	mux.HandleFunc("GET /v1/jobs", g.withTenant(g.handleList))
	mux.HandleFunc("GET /v1/jobs/{id}", g.withTenant(g.handleGet))
	mux.HandleFunc("DELETE /v1/jobs/{id}", g.withTenant(g.handleCancel))
	mux.HandleFunc("GET /v1/jobs/{id}/stream", g.withTenant(g.handleStream))
	mux.HandleFunc("GET /healthz", g.handleHealthz)
	mux.HandleFunc("GET /readyz", g.handleReadyz)
	mux.HandleFunc("GET /metrics", g.handleMetrics)
	return mux
}

// withTenant authenticates the request against the tenant registry and
// stashes the resolved tenant in the request context. In open mode
// (no tenant file) every request resolves to the unlimited default.
func (g *Gateway) withTenant(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		ten, err := g.tenants.FromRequest(r)
		if err != nil {
			writeHTTPError(w, http.StatusUnauthorized, err)
			return
		}
		h(w, r.WithContext(tenant.NewContext(r.Context(), ten)))
	}
}

// writeJSON mirrors the service daemon's encoding so job views render
// identically through either front door.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

type errorBody struct {
	Error string `json:"error"`
}

func writeHTTPError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorBody{Error: err.Error()})
}

func (g *Gateway) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec service.JobSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeHTTPError(w, http.StatusBadRequest, err)
		return
	}
	g.submitAndRespond(w, r, spec)
}

// handleProgram accepts the flattened POST /v1/programs body (the same
// shape a single pcserved accepts) and submits it as a program job.
func (g *Gateway) handleProgram(w http.ResponseWriter, r *http.Request) {
	var req service.ProgramRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeHTTPError(w, http.StatusBadRequest, err)
		return
	}
	g.submitAndRespond(w, r, req.JobSpec())
}

// submitAndRespond runs SubmitAs for the request's tenant and writes
// the submission response, mirroring a single backend's status mapping
// (plus the gateway-only 429 for quota rejections).
func (g *Gateway) submitAndRespond(w http.ResponseWriter, r *http.Request, spec service.JobSpec) {
	ten := tenant.FromContext(r.Context())
	if ten == nil {
		ten = g.tenants.Default()
	}
	job, err := g.SubmitAs(spec, ten)
	var qe *tenant.QuotaError
	var pe *service.ProgramError
	switch {
	case err == nil:
		writeJSON(w, http.StatusAccepted, job.view(false))
	case errors.As(err, &qe):
		w.Header().Set("Retry-After", strconv.Itoa(qe.RetryAfterSeconds()))
		writeHTTPError(w, http.StatusTooManyRequests, err)
	case errors.Is(err, ErrDraining):
		writeHTTPError(w, http.StatusServiceUnavailable, err)
	case errors.As(err, &pe):
		writeHTTPError(w, http.StatusUnprocessableEntity, err)
	default:
		writeHTTPError(w, http.StatusBadRequest, err)
	}
}

func (g *Gateway) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, g.List())
}

func (g *Gateway) jobFor(w http.ResponseWriter, r *http.Request) (*fleetJob, bool) {
	job, err := g.Get(r.PathValue("id"))
	if err != nil {
		writeHTTPError(w, http.StatusNotFound, err)
		return nil, false
	}
	return job, true
}

func (g *Gateway) handleGet(w http.ResponseWriter, r *http.Request) {
	if job, ok := g.jobFor(w, r); ok {
		writeJSON(w, http.StatusOK, job.view(true))
	}
}

func (g *Gateway) handleCancel(w http.ResponseWriter, r *http.Request) {
	job, err := g.Cancel(r.PathValue("id"))
	if err != nil {
		writeHTTPError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, job.view(false))
}

// handleStream emits the same NDJSON a single backend would: one line
// per sweep cell in grid order, then the terminal status line. Because
// the dispatcher gathers cells back into grid order before appending,
// the stream through the gateway is byte-identical to a single
// backend's stream for the same sweep.
func (g *Gateway) handleStream(w http.ResponseWriter, r *http.Request) {
	job, ok := g.jobFor(w, r)
	if !ok {
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	sent := 0
	for {
		job.mu.Lock()
		cells := job.cells[sent:]
		state := job.state
		result := job.result
		errMsg := job.errMsg
		updated := job.updated
		job.mu.Unlock()

		for _, cell := range cells {
			w.Write(cell)
			w.Write([]byte("\n"))
			sent++
		}
		if state.Terminal() {
			if sent == 0 && len(result) > 0 {
				w.Write(result)
				w.Write([]byte("\n"))
			}
			final, _ := json.Marshal(struct {
				State service.JobState `json:"state"`
				Error string           `json:"error,omitempty"`
			}{state, errMsg})
			w.Write(final)
			w.Write([]byte("\n"))
			if flusher != nil {
				flusher.Flush()
			}
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
		select {
		case <-updated:
		case <-r.Context().Done():
			return
		}
	}
}

// fleetHealth is the gateway's /healthz and /readyz body.
type fleetHealth struct {
	Status          string          `json:"status"`
	Accepting       bool            `json:"accepting"`
	BackendsHealthy int             `json:"backends_healthy"`
	BackendsTotal   int             `json:"backends_total"`
	Backends        []backendHealth `json:"backends"`
}

type backendHealth struct {
	URL        string `json:"url"`
	Healthy    bool   `json:"healthy"`
	Inflight   int    `json:"inflight"`
	QueueDepth int    `json:"queue_depth"`
	LastError  string `json:"last_error,omitempty"`
}

func (g *Gateway) health() fleetHealth {
	g.mu.Lock()
	accepting := g.accepting
	g.mu.Unlock()
	h := fleetHealth{Status: "ok", Accepting: accepting}
	for _, b := range g.pool.all() {
		b.mu.Lock()
		bh := backendHealth{
			URL: b.URL, Healthy: b.healthy, Inflight: b.inflight,
			QueueDepth: b.load.QueueDepth, LastError: b.lastErr,
		}
		b.mu.Unlock()
		h.BackendsTotal++
		if bh.Healthy {
			h.BackendsHealthy++
		}
		h.Backends = append(h.Backends, bh)
	}
	return h
}

// handleHealthz is liveness: the gateway process is up, with a backend
// summary for operators. Always 200.
func (g *Gateway) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, g.health())
}

// handleReadyz is readiness: 503 while draining or while no backend is
// admitted (the gateway cannot place work anywhere).
func (g *Gateway) handleReadyz(w http.ResponseWriter, r *http.Request) {
	h := g.health()
	switch {
	case !h.Accepting:
		h.Status = "draining"
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, h)
	case h.BackendsHealthy == 0:
		h.Status = "no healthy backends"
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, h)
	default:
		h.Status = "ready"
		writeJSON(w, http.StatusOK, h)
	}
}

func (g *Gateway) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	g.metrics.WriteText(w, g.gauges())
}
