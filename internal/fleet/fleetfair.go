package fleet

import (
	"context"
	"fmt"
	"io"
	"sort"
	"sync/atomic"
	"time"

	"pcoup/internal/experiments"
	"pcoup/internal/machine"
	"pcoup/internal/service"
	"pcoup/internal/tenant"
)

// The fleetfair experiment measures multi-tenant isolation through the
// gateway: an interactive tenant submits small single-cell jobs while a
// batch tenant floods the fleet with sweeps, and the interactive p50/p99
// latency is compared between FIFO dispatch (the batch backlog queues
// ahead of everything) and weighted DRR dispatch (interactive-class
// cells are served first). This is the paper's static-placement vs
// runtime-arbitration tradeoff lifted to the fleet: FIFO is the fixed
// compile-time schedule, DRR the runtime scheduler reordering around a
// stalled (here: flooded) resource. Every submission carries a distinct
// cycle budget so nothing is served from cache — the measurement is
// queueing, not cache luck.
func init() {
	experiments.Register(experiments.Experiment{
		Name:      "fleetfair",
		Brief:     "interactive p50/p99 under batch flood, FIFO vs DRR dispatch (extension; spawns local daemons)",
		SkipInAll: true,
		Run:       func(rc *experiments.RunContext) (any, error) { return FleetFair(rc.Context()) },
		Write: func(w io.Writer, _ *machine.Config, rows any) {
			WriteFleetFair(w, rows.([]FleetFairRow))
		},
	})
}

// FleetFairRow is one (backend count, scheduling) configuration.
type FleetFairRow struct {
	// Backends is the pcserved count behind the gateway.
	Backends int `json:"backends"`
	// Sched is the dispatch discipline: "fifo" or "drr".
	Sched string `json:"sched"`
	// BaseP50MS/BaseP99MS are interactive latencies on an idle fleet.
	BaseP50MS float64 `json:"base_p50_ms"`
	BaseP99MS float64 `json:"base_p99_ms"`
	// FloodP50MS/FloodP99MS are interactive latencies under batch flood.
	FloodP50MS float64 `json:"flood_p50_ms"`
	FloodP99MS float64 `json:"flood_p99_ms"`
	// Steals is how many cells moved between backend queues.
	Steals int64 `json:"steals"`
}

const (
	fleetFairSamples  = 8 // interactive jobs per measurement
	fleetFairOutstand = 2 // batch sweeps kept in flight during the flood
)

// fleetFairCycles hands out a distinct cycle budget per submission so
// every job has a distinct content key (no cross-submission cache hits).
var fleetFairCycles atomic.Int64

func nextFairOptions() service.SimOptions {
	return service.SimOptions{MaxCycles: 10_000_000 + fleetFairCycles.Add(1)}
}

// FleetFair measures every scheduling discipline at 1, 2, and 4
// backends.
func FleetFair(ctx context.Context) ([]FleetFairRow, error) {
	var rows []FleetFairRow
	for _, n := range []int{1, 2, 4} {
		for _, sched := range []string{"fifo", "drr"} {
			row, err := fleetFairOne(ctx, n, sched)
			if err != nil {
				return nil, fmt.Errorf("fleetfair %d backends %s: %w", n, sched, err)
			}
			rows = append(rows, *row)
		}
	}
	return rows, nil
}

// fleetFairOne boots n fresh backends plus a gateway under the given
// scheduling discipline and measures interactive latency idle and
// flooded.
func fleetFairOne(ctx context.Context, n int, sched string) (*FleetFairRow, error) {
	var urls []string
	var stops []func()
	defer func() {
		for _, stop := range stops {
			stop()
		}
	}()
	for i := 0; i < n; i++ {
		url, stop, err := startLocalBackend()
		if err != nil {
			return nil, err
		}
		urls = append(urls, url)
		stops = append(stops, stop)
	}

	gw, err := New(Options{
		Pool:       PoolOptions{Backends: urls, ProbeInterval: 200 * time.Millisecond},
		Scheduling: sched,
		// One dispatch worker per backend: contention for the worker is
		// the whole point of the measurement.
		BackendConcurrency: 1,
		HedgeQuantile:      2, // disabled: hedges would blur the queueing signal
	})
	if err != nil {
		return nil, err
	}
	if err := gw.Start(); err != nil {
		return nil, err
	}
	stops = append(stops, func() {
		sctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		gw.Shutdown(sctx)
	})

	interactive, err := tenant.New(tenant.Spec{Name: "interactive", Weight: 8, Class: "interactive"})
	if err != nil {
		return nil, err
	}
	batch, err := tenant.New(tenant.Spec{Name: "batch", Weight: 1, Class: "batch"})
	if err != nil {
		return nil, err
	}

	base, err := fleetFairSample(ctx, gw, interactive)
	if err != nil {
		return nil, err
	}

	floodCtx, stopFlood := context.WithCancel(ctx)
	floodDone := make(chan struct{})
	go fleetFairFlood(floodCtx, gw, batch, floodDone)
	flooded, err := fleetFairSample(ctx, gw, interactive)
	stopFlood()
	<-floodDone
	if err != nil {
		return nil, err
	}

	return &FleetFairRow{
		Backends:   n,
		Sched:      sched,
		BaseP50MS:  durMS(percentile(base, 0.50)),
		BaseP99MS:  durMS(percentile(base, 0.99)),
		FloodP50MS: durMS(percentile(flooded, 0.50)),
		FloodP99MS: durMS(percentile(flooded, 0.99)),
		Steals:     gw.Metrics().Steals(),
	}, nil
}

// fleetFairSample runs sequential interactive single-cell jobs and
// returns their latencies.
func fleetFairSample(ctx context.Context, gw *Gateway, ten *tenant.Tenant) ([]time.Duration, error) {
	lats := make([]time.Duration, 0, fleetFairSamples)
	for i := 0; i < fleetFairSamples; i++ {
		spec := service.JobSpec{
			Cell:    &service.CellSpec{Bench: "matrix", Mode: "Coupled"},
			Options: nextFairOptions(),
		}
		start := time.Now()
		job, err := gw.SubmitAs(spec, ten)
		if err != nil {
			return nil, err
		}
		select {
		case <-job.done:
		case <-ctx.Done():
			gw.Cancel(job.id)
			<-job.done
			return nil, ctx.Err()
		}
		if v := job.view(false); v.State != service.JobDone {
			return nil, fmt.Errorf("interactive job %s: %s", v.State, v.Error)
		}
		lats = append(lats, time.Since(start))
	}
	return lats, nil
}

// fleetFairFlood keeps fleetFairOutstand batch sweeps in flight until
// the context is cancelled, then cancels the stragglers and drains.
func fleetFairFlood(ctx context.Context, gw *Gateway, ten *tenant.Tenant, done chan<- struct{}) {
	defer close(done)
	slots := make(chan struct{}, fleetFairOutstand)
	var inflight []*fleetJob
	for {
		select {
		case slots <- struct{}{}:
		case <-ctx.Done():
			for _, job := range inflight {
				gw.Cancel(job.id)
			}
			for _, job := range inflight {
				<-job.done
			}
			return
		}
		spec := service.JobSpec{
			Sweep:   &service.SweepSpec{Benches: []string{"fft", "matrix"}, MinIU: 1, MaxIU: 3},
			Options: nextFairOptions(),
		}
		job, err := gw.SubmitAs(spec, ten)
		if err != nil {
			<-slots
			continue
		}
		inflight = append(inflight, job)
		go func(j *fleetJob) {
			<-j.done
			<-slots
		}(job)
	}
}

// percentile returns the p-quantile latency by rank (nearest-rank on
// the sorted sample; p99 of a small sample is its maximum).
func percentile(lats []time.Duration, p float64) time.Duration {
	if len(lats) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), lats...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(p*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

func durMS(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// WriteFleetFair renders the fairness table plus the FIFO-to-DRR p99
// improvement at each fleet size.
func WriteFleetFair(w io.Writer, rows []FleetFairRow) {
	fmt.Fprintf(w, "Fleet fairness: interactive latency with and without a batch sweep flood\n")
	fmt.Fprintf(w, "(fifo: single queue per backend; drr: weighted deficit round-robin with\n")
	fmt.Fprintf(w, "strict interactive-before-batch class priority and tail work stealing)\n\n")
	fmt.Fprintf(w, "%9s %6s %10s %10s %11s %11s %7s\n",
		"backends", "sched", "idle p50", "idle p99", "flood p50", "flood p99", "steals")
	for _, r := range rows {
		fmt.Fprintf(w, "%9d %6s %8.1fms %8.1fms %9.1fms %9.1fms %7d\n",
			r.Backends, r.Sched, r.BaseP50MS, r.BaseP99MS, r.FloodP50MS, r.FloodP99MS, r.Steals)
	}
	fmt.Fprintf(w, "\n")
	byKey := map[string]FleetFairRow{}
	for _, r := range rows {
		byKey[fmt.Sprintf("%d/%s", r.Backends, r.Sched)] = r
	}
	for _, n := range []int{1, 2, 4} {
		fifo, okF := byKey[fmt.Sprintf("%d/fifo", n)]
		drr, okD := byKey[fmt.Sprintf("%d/drr", n)]
		if okF && okD && drr.FloodP99MS > 0 {
			fmt.Fprintf(w, "%d backend(s): drr improves flooded interactive p99 %.1fx over fifo\n",
				n, fifo.FloodP99MS/drr.FloodP99MS)
		}
	}
}
