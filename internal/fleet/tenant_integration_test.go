package fleet

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"net/http/httputil"
	"net/url"
	"strings"
	"testing"
	"time"

	"pcoup/internal/service"
	"pcoup/internal/tenant"
)

// testRegistry builds a closed two-tenant registry: an interactive
// tenant (weight 8) and a batch tenant (weight 1), with any extra spec
// fields applied by mut.
func testRegistry(t *testing.T, mut func(specs []tenant.Spec) []tenant.Spec) *tenant.Registry {
	t.Helper()
	specs := []tenant.Spec{
		{Name: "alice", Key: "alice-key", Weight: 8, Class: "interactive"},
		{Name: "bob", Key: "bob-key", Weight: 1, Class: "batch"},
	}
	if mut != nil {
		specs = mut(specs)
	}
	reg, err := tenant.NewRegistry(specs)
	if err != nil {
		t.Fatalf("NewRegistry: %v", err)
	}
	return reg
}

// authJSON is apiJSON plus a tenant API key; it returns the response
// headers for Retry-After assertions.
func authJSON(t *testing.T, method, url, key string, body []byte, wantStatus int, out any) http.Header {
	t.Helper()
	req, err := http.NewRequest(method, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if key != "" {
		req.Header.Set("Authorization", "Bearer "+key)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != wantStatus {
		t.Fatalf("%s %s: status %d, want %d; body: %s", method, url, resp.StatusCode, wantStatus, data)
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatalf("%s %s: decoding: %v", method, url, err)
		}
	}
	return resp.Header
}

// authWaitJob polls a keyed gateway until the job is terminal.
func authWaitJob(t *testing.T, base, key, id string) service.JobView {
	t.Helper()
	deadline := time.Now().Add(4 * time.Minute)
	for {
		var view service.JobView
		authJSON(t, "GET", base+"/v1/jobs/"+id, key, nil, http.StatusOK, &view)
		if view.State.Terminal() {
			return view
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s (%d/%d cells)", id, view.State, view.CellsDone, view.CellsTotal)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestGatewayAuth: a keyed gateway rejects unauthenticated and
// wrong-key job requests with 401, accepts valid keys (Bearer and
// X-PC-Tenant-Key), and leaves health and metrics endpoints open.
func TestGatewayAuth(t *testing.T) {
	urlA, _, _ := startBackend(t, service.Options{})
	_, gwTS := startGateway(t, []string{urlA}, func(o *Options) {
		o.Tenants = testRegistry(t, nil)
	})

	spec, _ := json.Marshal(service.JobSpec{Cell: &service.CellSpec{Bench: "matrix", Mode: "SEQ"}})
	authJSON(t, "POST", gwTS.URL+"/v1/jobs", "", spec, http.StatusUnauthorized, nil)
	authJSON(t, "POST", gwTS.URL+"/v1/jobs", "nope", spec, http.StatusUnauthorized, nil)
	authJSON(t, "GET", gwTS.URL+"/v1/jobs", "", nil, http.StatusUnauthorized, nil)

	var view service.JobView
	authJSON(t, "POST", gwTS.URL+"/v1/jobs", "alice-key", spec, http.StatusAccepted, &view)
	if view.Tenant != "alice" {
		t.Fatalf("job attributed to %q, want alice", view.Tenant)
	}

	// The alternate key header works too.
	req, _ := http.NewRequest("POST", gwTS.URL+"/v1/jobs", bytes.NewReader(spec))
	req.Header.Set("X-PC-Tenant-Key", "bob-key")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("X-PC-Tenant-Key submit: %d, want 202", resp.StatusCode)
	}

	// Probes and scrapers need no key.
	for _, path := range []string{"/healthz", "/readyz", "/metrics"} {
		if code := getStatus(t, gwTS.URL+path); code != http.StatusOK {
			t.Fatalf("GET %s without key: %d, want 200", path, code)
		}
	}
}

// TestQuotaRejectionCarries429: a submission past the tenant's
// queued-cell quota answers 429 with a Retry-After header and counts
// into pcfleet_shed_total for the tenant's class.
func TestQuotaRejectionCarries429(t *testing.T) {
	urlA, _, _ := startBackend(t, service.Options{})
	gw, gwTS := startGateway(t, []string{urlA}, func(o *Options) {
		o.Tenants = testRegistry(t, func(specs []tenant.Spec) []tenant.Spec {
			specs[1].MaxQueuedCells = 4
			return specs
		})
	})

	// 18 cells against a 4-cell queued quota: deterministic rejection,
	// independent of how fast the backend drains.
	spec, _ := json.Marshal(service.JobSpec{Sweep: &testSweep})
	hdr := authJSON(t, "POST", gwTS.URL+"/v1/jobs", "bob-key", spec, http.StatusTooManyRequests, nil)
	if hdr.Get("Retry-After") == "" {
		t.Fatal("429 without a Retry-After header")
	}
	if n := gw.Metrics().ShedTotal("batch"); n != 1 {
		t.Fatalf("shed_total{batch} = %d, want 1", n)
	}
	if v := metricValue(t, gwTS.URL, `pcfleet_shed_total{class="batch"}`); v != 1 {
		t.Fatalf("scraped shed_total{batch} = %v, want 1", v)
	}

	// The rejection left no queued-cell accounting behind: a small job
	// within quota still goes through.
	cell, _ := json.Marshal(service.JobSpec{Cell: &service.CellSpec{Bench: "matrix", Mode: "SEQ"}})
	var view service.JobView
	authJSON(t, "POST", gwTS.URL+"/v1/jobs", "bob-key", cell, http.StatusAccepted, &view)
	authWaitJob(t, gwTS.URL, "bob-key", view.ID)
}

// TestPeerFillServesWarmCacheAcrossRing: cells whose caches were warmed
// on one backend are served by peer-fill probes instead of recomputed
// when the ring assigns them elsewhere — and the merged stream stays
// byte-identical to the single-backend run that warmed them.
func TestPeerFillServesWarmCacheAcrossRing(t *testing.T) {
	urlA, _, _ := startBackend(t, service.Options{})
	urlB, _, _ := startBackend(t, service.Options{})

	// Warm every cell (and the job key) on A alone.
	spec := service.JobSpec{Sweep: &testSweep}
	ref := waitJob(t, urlA, submitJob(t, urlA, spec).ID)
	if ref.State != service.JobDone {
		t.Fatalf("warming sweep: %s (%s)", ref.State, ref.Error)
	}
	refStream := streamBytes(t, urlA, ref.ID)

	// A gateway over [A, B]: B-owned cells miss B's cache but peer-fill
	// from A; A-owned cells hit A's cache directly. Nothing recomputes.
	gw, gwTS := startGateway(t, []string{urlA, urlB}, nil)
	got := waitJob(t, gwTS.URL, submitJob(t, gwTS.URL, spec).ID)
	if got.State != service.JobDone {
		t.Fatalf("fleet sweep: %s (%s)", got.State, got.Error)
	}
	if !got.CacheHit {
		t.Fatal("sweep over a fully warmed fleet not reported as a cache hit")
	}
	if !bytes.Equal(streamBytes(t, gwTS.URL, got.ID), refStream) {
		t.Fatal("peer-filled stream differs from the warming backend's stream")
	}
	if n := gw.Metrics().PeerFillHits(); n == 0 {
		t.Fatal("no peer-fill hits recorded (every B-owned cell should probe A)")
	}
	// No cell was dispatched to a backend for compute.
	resp, err := http.Get(gwTS.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if strings.Contains(string(body), "pcfleet_cells_dispatched_total{") {
		t.Fatalf("warmed sweep still dispatched cells:\n%s", body)
	}
}

// slowProxy fronts a backend with a fixed per-request delay on the job
// API (probes stay fast), making the backend a straggler so its queue
// backs up and the other backend steals.
func slowProxy(t *testing.T, target string, delay time.Duration) string {
	t.Helper()
	u, err := url.Parse(target)
	if err != nil {
		t.Fatal(err)
	}
	rp := httputil.NewSingleHostReverseProxy(u)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasPrefix(r.URL.Path, "/v1/") {
			time.Sleep(delay)
		}
		rp.ServeHTTP(w, r)
	}))
	t.Cleanup(ts.Close)
	return ts.URL
}

// TestStealPreservesByteIdenticalStream: with one straggling backend,
// the fast backend steals from the straggler's queue tail; the merged
// stream must still be byte-identical to a single-backend run.
func TestStealPreservesByteIdenticalStream(t *testing.T) {
	refURL, _, _ := startBackend(t, service.Options{})
	urlA, _, _ := startBackend(t, service.Options{})
	urlB, _, _ := startBackend(t, service.Options{})
	slowA := slowProxy(t, urlA, 400*time.Millisecond)

	// One worker per backend: the straggler's cells sit in its queue
	// (stealable) instead of being scattered into in-flight requests.
	// Peer-fill is off so the fast backend's cells don't ride probe
	// round-trips through the slow proxy.
	gw, gwTS := startGateway(t, []string{slowA, urlB}, func(o *Options) {
		o.BackendConcurrency = 1
		o.NoPeerFill = true
	})

	spec := service.JobSpec{Sweep: &service.SweepSpec{Benches: []string{"lud"}, MinIU: 1, MaxIU: 5}}
	ref := waitJob(t, refURL, submitJob(t, refURL, spec).ID)
	if ref.State != service.JobDone {
		t.Fatalf("reference sweep: %s (%s)", ref.State, ref.Error)
	}

	got := waitJob(t, gwTS.URL, submitJob(t, gwTS.URL, spec).ID)
	if got.State != service.JobDone {
		t.Fatalf("fleet sweep: %s (%s)", got.State, got.Error)
	}
	if n := gw.Metrics().Steals(); n == 0 {
		t.Fatal("fast backend never stole from the straggler's queue")
	}
	if !bytes.Equal(streamBytes(t, gwTS.URL, got.ID), streamBytes(t, refURL, ref.ID)) {
		t.Fatal("stolen-cell stream differs from single-backend stream")
	}
}

// TestInteractivePreemptsBatchBacklog: with a batch sweep queued behind
// one slow backend, a later interactive submission must be served ahead
// of the remaining batch cells (strict class priority in the DRR
// dispatcher) and finish while the batch job is still running.
func TestInteractivePreemptsBatchBacklog(t *testing.T) {
	urlA, _, _ := startBackend(t, service.Options{})
	slowA := slowProxy(t, urlA, 100*time.Millisecond)
	_, gwTS := startGateway(t, []string{slowA}, func(o *Options) {
		o.Tenants = testRegistry(t, nil)
		o.BackendConcurrency = 1
		o.NoPeerFill = true // every cell rides the slow dispatch path
	})

	batchSpec, _ := json.Marshal(service.JobSpec{Sweep: &testSweep})
	var batch service.JobView
	authJSON(t, "POST", gwTS.URL+"/v1/jobs", "bob-key", batchSpec, http.StatusAccepted, &batch)

	cellSpec, _ := json.Marshal(service.JobSpec{Cell: &service.CellSpec{Bench: "matrix", Mode: "SEQ"}})
	var inter service.JobView
	authJSON(t, "POST", gwTS.URL+"/v1/jobs", "alice-key", cellSpec, http.StatusAccepted, &inter)

	interDone := authWaitJob(t, gwTS.URL, "alice-key", inter.ID)
	if interDone.State != service.JobDone {
		t.Fatalf("interactive job: %s (%s)", interDone.State, interDone.Error)
	}
	var batchView service.JobView
	authJSON(t, "GET", gwTS.URL+"/v1/jobs/"+batch.ID, "bob-key", nil, http.StatusOK, &batchView)
	if batchView.State.Terminal() {
		t.Fatal("batch sweep already finished: interactive job did not preempt anything")
	}
	authWaitJob(t, gwTS.URL, "bob-key", batch.ID)
}
