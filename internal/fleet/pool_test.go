package fleet

import (
	"testing"
)

// testPool builds a pool without starting its prober, with every
// backend marked healthy.
func testPool(t *testing.T, opts PoolOptions) *Pool {
	t.Helper()
	p, err := newPool(opts, NewMetrics())
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range p.all() {
		b.mu.Lock()
		b.healthy = true
		b.mu.Unlock()
	}
	return p
}

// TestPickBoundedLoadSpill: a saturated owner spills its key to the next
// ring node; an unsaturated owner keeps it.
func TestPickBoundedLoadSpill(t *testing.T) {
	p := testPool(t, PoolOptions{Backends: []string{"http://a:1", "http://b:1"}, LoadFactor: 1.25})

	const key = "some-content-key"
	owner, spilled, err := p.pick(key, nil)
	if err != nil || spilled {
		t.Fatalf("idle pick: owner=%v spilled=%v err=%v", owner, spilled, err)
	}
	if owner.URL != p.ring.owner(key) {
		t.Fatalf("idle pick chose %s, ring owner is %s", owner.URL, p.ring.owner(key))
	}

	// Saturate the owner far past any capacity the other's load allows.
	owner.mu.Lock()
	owner.inflight = 100
	owner.mu.Unlock()
	got, spilled, err := p.pick(key, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !spilled || got.URL == owner.URL {
		t.Fatalf("saturated owner not spilled: got %s, spilled=%v", got.URL, spilled)
	}

	// Both saturated: the owner absorbs the overload rather than failing.
	got.mu.Lock()
	got.inflight = 100
	got.mu.Unlock()
	final, spilled, err := p.pick(key, nil)
	if err != nil {
		t.Fatal(err)
	}
	if final.URL != owner.URL || spilled {
		t.Fatalf("fully saturated pool: got %s spilled=%v, want owner %s", final.URL, spilled, owner.URL)
	}
}

// TestPickSkipsUnhealthyAndExcluded: ejected and explicitly excluded
// backends never receive work; an empty candidate set is ErrNoBackends.
func TestPickSkipsUnhealthyAndExcluded(t *testing.T) {
	p := testPool(t, PoolOptions{Backends: []string{"http://a:1", "http://b:1", "http://c:1"}})
	const key = "another-key"
	owner := p.ring.owner(key)

	p.markDown(p.backends[owner], nil)
	got, _, err := p.pick(key, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.URL == owner {
		t.Fatalf("pick routed to ejected owner %s", owner)
	}

	// Exclude the failover target too; the last backend must be picked.
	got2, _, err := p.pick(key, map[string]bool{got.URL: true})
	if err != nil {
		t.Fatal(err)
	}
	if got2.URL == got.URL || got2.URL == owner {
		t.Fatalf("pick ignored exclusion: %s", got2.URL)
	}

	if _, _, err := p.pick(key, map[string]bool{got.URL: true, got2.URL: true}); err != ErrNoBackends {
		t.Fatalf("exhausted pool: err=%v, want ErrNoBackends", err)
	}
}
