package fleet

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"time"

	"pcoup/internal/experiments"
	"pcoup/internal/machine"
	"pcoup/internal/service"
)

// The fleetscale experiment measures how sweep wall-clock scales with
// the backend count behind one gateway: for each fleet size it boots
// that many in-process pcserved backends (cold caches), runs a fixed
// unit-mix sweep through pcfleet, and then re-runs it to show the
// affinity payoff (the resubmission should be served almost entirely
// from the sharded caches). It lives in package fleet because the
// service layer imports internal/experiments, so the experiment cannot
// be defined there without a cycle; pcbench links it in via a blank
// import.
func init() {
	experiments.Register(experiments.Experiment{
		Name:      "fleetscale",
		Brief:     "sweep wall-clock through pcfleet vs backend count (extension; spawns local daemons)",
		SkipInAll: true,
		Run:       func(rc *experiments.RunContext) (any, error) { return FleetScale(rc.Context()) },
		Write: func(w io.Writer, _ *machine.Config, rows any) {
			WriteFleetScale(w, rows.([]FleetScaleRow))
		},
	})
}

// FleetScaleRow is one fleet size's measurement.
type FleetScaleRow struct {
	// Backends is the pcserved count behind the gateway.
	Backends int `json:"backends"`
	// Cells is the sweep's cell count.
	Cells int `json:"cells"`
	// ColdMS is the sweep wall-clock with empty backend caches.
	ColdMS float64 `json:"cold_ms"`
	// WarmMS is the wall-clock of resubmitting the identical sweep.
	WarmMS float64 `json:"warm_ms"`
	// Speedup is the 1-backend cold wall-clock over this row's.
	Speedup float64 `json:"speedup"`
	// AffinityHitRatio is cache hits over content-key-routed dispatches
	// during the warm pass (cells that routed back to a backend that
	// had them cached; bounded-load spills during the cold pass lower
	// it below 100%).
	AffinityHitRatio float64 `json:"affinity_hit_ratio"`
}

// fleetScaleSweep is the fixed workload: every benchmark across a
// 3x2 unit grid in Coupled mode (24 cells), heavy enough that scatter
// parallelism is visible, small enough for CI.
func fleetScaleSweep() *service.SweepSpec {
	return &service.SweepSpec{Mode: "Coupled", MinIU: 1, MaxIU: 3, MinFPU: 1, MaxFPU: 2}
}

// FleetScale runs the scaling measurement for 1, 2, and 4 backends.
func FleetScale(ctx context.Context) ([]FleetScaleRow, error) {
	var rows []FleetScaleRow
	var baseline float64
	for _, n := range []int{1, 2, 4} {
		row, err := fleetScaleOne(ctx, n)
		if err != nil {
			return nil, fmt.Errorf("fleetscale %d backends: %w", n, err)
		}
		if baseline == 0 {
			baseline = row.ColdMS
		}
		if row.ColdMS > 0 {
			row.Speedup = baseline / row.ColdMS
		}
		rows = append(rows, *row)
	}
	return rows, nil
}

// fleetScaleOne boots n fresh backends plus a gateway, runs the sweep
// cold and warm, and tears everything down.
func fleetScaleOne(ctx context.Context, n int) (*FleetScaleRow, error) {
	var urls []string
	var stops []func()
	defer func() {
		for _, stop := range stops {
			stop()
		}
	}()
	for i := 0; i < n; i++ {
		url, stop, err := startLocalBackend()
		if err != nil {
			return nil, err
		}
		urls = append(urls, url)
		stops = append(stops, stop)
	}

	gw, err := New(Options{
		Pool:          PoolOptions{Backends: urls, ProbeInterval: 200 * time.Millisecond},
		HedgeQuantile: 2, // disabled: hedges would blur the scaling signal
	})
	if err != nil {
		return nil, err
	}
	if err := gw.Start(); err != nil {
		return nil, err
	}
	stops = append(stops, func() {
		sctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		gw.Shutdown(sctx)
	})

	sw := fleetScaleSweep()
	cold, cells, err := runFleetSweep(ctx, gw, sw)
	if err != nil {
		return nil, err
	}
	coldLookups, coldHits := gw.Metrics().AffinityStats()
	warm, _, err := runFleetSweep(ctx, gw, sw)
	if err != nil {
		return nil, err
	}
	allLookups, allHits := gw.Metrics().AffinityStats()
	lookups, hits := allLookups-coldLookups, allHits-coldHits
	row := &FleetScaleRow{
		Backends: n,
		Cells:    cells,
		ColdMS:   float64(cold) / float64(time.Millisecond),
		WarmMS:   float64(warm) / float64(time.Millisecond),
	}
	if lookups > 0 {
		row.AffinityHitRatio = float64(hits) / float64(lookups)
	}
	return row, nil
}

// runFleetSweep submits sw through the gateway and waits for it.
func runFleetSweep(ctx context.Context, gw *Gateway, sw *service.SweepSpec) (time.Duration, int, error) {
	start := time.Now()
	job, err := gw.Submit(service.JobSpec{Sweep: &service.SweepSpec{
		Benches: sw.Benches, Mode: sw.Mode,
		MinIU: sw.MinIU, MaxIU: sw.MaxIU, MinFPU: sw.MinFPU, MaxFPU: sw.MaxFPU,
	}})
	if err != nil {
		return 0, 0, err
	}
	select {
	case <-job.done:
	case <-ctx.Done():
		gw.Cancel(job.id)
		<-job.done
		return 0, 0, ctx.Err()
	}
	v := job.view(false)
	if v.State != service.JobDone {
		return 0, 0, fmt.Errorf("sweep %s: %s", v.State, v.Error)
	}
	return time.Since(start), v.CellsTotal, nil
}

// startLocalBackend boots one in-process pcserved (loopback listener,
// cold cache) and returns its base URL plus a stop function.
func startLocalBackend() (string, func(), error) {
	srv := service.New(service.Options{})
	if err := srv.Start(); err != nil {
		return "", nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		srv.Shutdown(context.Background())
		return "", nil, err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go httpSrv.Serve(ln)
	stop := func() {
		sctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		srv.Shutdown(sctx)
		httpSrv.Shutdown(context.Background())
	}
	return "http://" + ln.Addr().String(), stop, nil
}

// WriteFleetScale renders the scaling table.
func WriteFleetScale(w io.Writer, rows []FleetScaleRow) {
	fmt.Fprintf(w, "Fleet scaling: sweep wall-clock through pcfleet vs backend count\n")
	fmt.Fprintf(w, "(cold: empty caches; warm: identical resubmission hitting the sharded caches)\n\n")
	fmt.Fprintf(w, "%9s %6s %10s %10s %8s %9s\n", "backends", "cells", "cold ms", "warm ms", "speedup", "affinity")
	for _, r := range rows {
		fmt.Fprintf(w, "%9d %6d %10.1f %10.1f %7.2fx %8.1f%%\n",
			r.Backends, r.Cells, r.ColdMS, r.WarmMS, r.Speedup, 100*r.AffinityHitRatio)
	}
}
