package fleet

import (
	"context"
	"fmt"
	"testing"

	"pcoup/internal/tenant"
)

// tryNext is the non-blocking test shim around the worker pop path.
func (d *dispatcher) tryNext(url string) *task {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.popLocked(url)
}

func testTenant(t *testing.T, s tenant.Spec) *tenant.Tenant {
	t.Helper()
	ten, err := tenant.New(s)
	if err != nil {
		t.Fatal(err)
	}
	return ten
}

func mkTasks(ten *tenant.Tenant, owner string, n int) []*task {
	tasks := make([]*task, n)
	for i := range tasks {
		tasks[i] = &task{
			ctx:   context.Background(),
			ten:   ten,
			key:   fmt.Sprintf("%s-%d", ten.Name(), i),
			index: i,
			owner: owner,
			resCh: make(chan taskResult, 1),
		}
		ten.Admit(1) // mirror the gateway's queued accounting
	}
	return tasks
}

func TestDRRWeightRatios(t *testing.T) {
	heavy := testTenant(t, tenant.Spec{Name: "heavy", Weight: 3})
	light := testTenant(t, tenant.Spec{Name: "light", Weight: 1})
	d := newDispatcher([]string{"b"}, true, 0, NewMetrics())
	d.enqueue(mkTasks(heavy, "b", 400))
	d.enqueue(mkTasks(light, "b", 400))

	counts := map[string]int{}
	const pops = 200
	for i := 0; i < pops; i++ {
		task := d.tryNext("b")
		if task == nil {
			t.Fatalf("pop %d returned nil with work queued", i)
		}
		counts[task.ten.Name()]++
		d.complete(task)
	}
	// 3:1 weights over 200 pops: heavy should take ~150 ± 10%.
	if counts["heavy"] < 135 || counts["heavy"] > 165 {
		t.Fatalf("heavy got %d of %d pops, want 150 +/- 10%%", counts["heavy"], pops)
	}
	if counts["light"] == 0 {
		t.Fatal("light tenant starved")
	}
}

func TestStarvationFreedom(t *testing.T) {
	flood := testTenant(t, tenant.Spec{Name: "flood", Weight: 100})
	small := testTenant(t, tenant.Spec{Name: "small", Weight: 1})
	d := newDispatcher([]string{"b"}, true, 0, NewMetrics())
	d.enqueue(mkTasks(flood, "b", 1000))
	d.enqueue(mkTasks(small, "b", 5))

	// One full DRR round serves at most weight_i from each tenant: the
	// weight-1 tenant must appear within the first 100+1 pops.
	firstSmall := -1
	for i := 0; i < 202; i++ {
		task := d.tryNext("b")
		if task == nil {
			t.Fatalf("pop %d returned nil", i)
		}
		if task.ten.Name() == "small" {
			firstSmall = i
			break
		}
		d.complete(task)
	}
	if firstSmall < 0 {
		t.Fatal("weight-1 tenant starved under weight-100 flood")
	}
	if firstSmall > 101 {
		t.Fatalf("weight-1 tenant first served at pop %d, want <= 101", firstSmall)
	}
}

func TestClassPriorityPreempts(t *testing.T) {
	batch := testTenant(t, tenant.Spec{Name: "bt", Class: tenant.Batch, Weight: 100})
	inter := testTenant(t, tenant.Spec{Name: "it", Weight: 1})
	d := newDispatcher([]string{"b"}, true, 0, NewMetrics())
	d.enqueue(mkTasks(batch, "b", 50))

	// Batch drains until interactive work arrives...
	got := d.tryNext("b")
	if got == nil || got.ten.Name() != "bt" {
		t.Fatalf("expected batch task, got %+v", got)
	}
	d.complete(got)

	// ...which then jumps the entire batch backlog.
	d.enqueue(mkTasks(inter, "b", 3))
	for i := 0; i < 3; i++ {
		got := d.tryNext("b")
		if got == nil || got.ten.Name() != "it" {
			t.Fatalf("pop %d: expected interactive task, got %+v", i, got)
		}
		d.complete(got)
	}
	if got := d.tryNext("b"); got == nil || got.ten.Name() != "bt" {
		t.Fatalf("expected batch resume, got %+v", got)
	}
}

func TestStealTakesTailChunk(t *testing.T) {
	ten := testTenant(t, tenant.Spec{Name: "a"})
	m := NewMetrics()
	d := newDispatcher([]string{"A", "B"}, true, 0, m)
	d.enqueue(mkTasks(ten, "A", 20))

	// B is idle: its pop steals a chunk (min(8, 20/2) = 8) from A's tail.
	got := d.tryNext("B")
	if got == nil {
		t.Fatal("idle backend did not steal")
	}
	if m.Steals() != 8 {
		t.Fatalf("steals_total = %d, want 8", m.Steals())
	}
	if got.index < 12 {
		t.Fatalf("stolen task has index %d — steal took from the head, not the tail", got.index)
	}
	depths := d.depths()
	if depths["A"] != 12 || depths["B"] != 7 {
		t.Fatalf("depths after steal = %v, want A:12 B:7", depths)
	}

	// A's own worker still gets the head task: locality preserved.
	own := d.tryNext("A")
	if own == nil || own.index != 0 {
		t.Fatalf("victim head task = %+v, want index 0", own)
	}
}

func TestStealSkipsSingletonQueue(t *testing.T) {
	ten := testTenant(t, tenant.Spec{Name: "a"})
	d := newDispatcher([]string{"A", "B"}, true, 0, NewMetrics())
	d.enqueue(mkTasks(ten, "A", 1))
	if got := d.tryNext("B"); got != nil {
		t.Fatalf("stole the victim's only task: %+v", got)
	}
	if got := d.tryNext("A"); got == nil || got.index != 0 {
		t.Fatalf("owner lost its task: %+v", got)
	}
}

func TestInflightQuotaGatesPop(t *testing.T) {
	capped := testTenant(t, tenant.Spec{Name: "capped", MaxInflightCells: 1})
	d := newDispatcher([]string{"b"}, true, 0, NewMetrics())
	d.enqueue(mkTasks(capped, "b", 3))

	first := d.tryNext("b")
	if first == nil {
		t.Fatal("first pop blocked")
	}
	if got := d.tryNext("b"); got != nil {
		t.Fatalf("pop succeeded past the inflight cap: %+v", got)
	}
	d.complete(first)
	if got := d.tryNext("b"); got == nil {
		t.Fatal("pop still blocked after completion freed the slot")
	}
}

func TestQuotaBlockedTenantDoesNotBlockOthers(t *testing.T) {
	capped := testTenant(t, tenant.Spec{Name: "capped", MaxInflightCells: 1})
	free := testTenant(t, tenant.Spec{Name: "free"})
	d := newDispatcher([]string{"b"}, true, 0, NewMetrics())
	d.enqueue(mkTasks(capped, "b", 5))
	d.enqueue(mkTasks(free, "b", 5))

	// Without completing anything, the capped tenant can contribute at
	// most 1 in-flight cell; the free tenant all 5.
	var got []*task
	cappedCount := 0
	for {
		task := d.tryNext("b")
		if task == nil {
			break
		}
		got = append(got, task)
		if task.ten.Name() == "capped" {
			cappedCount++
		}
	}
	if len(got) != 6 || cappedCount != 1 {
		t.Fatalf("popped %d tasks (%d capped), want 6 with exactly 1 capped", len(got), cappedCount)
	}

	// Releasing the capped slot unblocks its next queued cell.
	for _, task := range got {
		if task.ten.Name() == "capped" {
			d.complete(task)
		}
	}
	next := d.tryNext("b")
	if next == nil || next.ten.Name() != "capped" {
		t.Fatalf("after release: %+v, want capped task", next)
	}
}

func TestFIFOModeKeepsOrder(t *testing.T) {
	a := testTenant(t, tenant.Spec{Name: "a"})
	b := testTenant(t, tenant.Spec{Name: "b", Weight: 100})
	d := newDispatcher([]string{"x"}, false, 0, NewMetrics())
	d.enqueue(mkTasks(a, "x", 3))
	d.enqueue(mkTasks(b, "x", 3))

	want := []string{"a", "a", "a", "b", "b", "b"}
	for i, name := range want {
		got := d.tryNext("x")
		if got == nil || got.ten.Name() != name {
			t.Fatalf("fifo pop %d = %+v, want tenant %s", i, got, name)
		}
		d.complete(got)
	}
}

func TestCloseWakesWorkers(t *testing.T) {
	d := newDispatcher([]string{"b"}, true, 0, NewMetrics())
	done := make(chan *task, 1)
	go func() { done <- d.next("b") }()
	d.close()
	if got := <-done; got != nil {
		t.Fatalf("next after close = %+v, want nil", got)
	}
}
