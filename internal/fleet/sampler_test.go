package fleet

import (
	"testing"
	"time"
)

func TestSamplerQuantileCached(t *testing.T) {
	s := newLatencySampler()
	if d, n := s.quantile(0.9); d != 0 || n != 0 {
		t.Fatalf("empty sampler: quantile = %v, n = %d; want 0, 0", d, n)
	}
	for i := 1; i <= 100; i++ {
		s.record(time.Duration(i) * time.Millisecond)
	}
	d, n := s.quantile(0.9)
	if n != 100 {
		t.Fatalf("n = %d, want 100", n)
	}
	if d != 91*time.Millisecond {
		t.Fatalf("p90 of 1..100ms = %v, want 91ms", d)
	}

	// The cached value may lag, but the sample count must always be
	// live: HedgeMinSamples gating depends on it.
	s.record(500 * time.Millisecond)
	if _, n := s.quantile(0.9); n != 101 {
		t.Fatalf("n = %d after one more record, want live count 101", n)
	}

	// A different quantile busts the cache immediately.
	if d, _ := s.quantile(0.0); d != 1*time.Millisecond {
		t.Fatalf("p0 = %v, want 1ms", d)
	}

	// After samplerRefresh more records the cache must refresh: flood
	// the window with a new latency regime and check the quantile moves.
	for i := 0; i < samplerWindow; i++ {
		s.record(1 * time.Second)
	}
	if d, _ := s.quantile(0.9); d != 1*time.Second {
		t.Fatalf("p90 after regime change = %v, want 1s", d)
	}
}

// BenchmarkSamplerQuantileCached measures the per-cell cost of the hedge
// delay lookup in steady state: a full 256-sample window, one new record
// per dispatched cell, fixed quantile. The cache recomputes only every
// samplerRefresh records.
func BenchmarkSamplerQuantileCached(b *testing.B) {
	s := newLatencySampler()
	for i := 0; i < samplerWindow; i++ {
		s.record(time.Duration(i) * time.Millisecond)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.record(time.Duration(i) * time.Millisecond)
		s.quantile(0.9)
	}
}

// BenchmarkSamplerQuantileUncached is the pre-cache baseline: alternating
// quantiles defeat the cache, forcing the full copy+sort of the window on
// every call — the old per-cell cost.
func BenchmarkSamplerQuantileUncached(b *testing.B) {
	s := newLatencySampler()
	for i := 0; i < samplerWindow; i++ {
		s.record(time.Duration(i) * time.Millisecond)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.record(time.Duration(i) * time.Millisecond)
		if i%2 == 0 {
			s.quantile(0.9)
		} else {
			s.quantile(0.5)
		}
	}
}
