// Package oracle is a direct tree-walking evaluator for the source
// language, used as an independent reference for differential testing of
// the compiler + simulator pipeline (fuzz targets, the service's
// optional result verification, and pcbench's fuzzdiff experiment).
//
// Arithmetic is delegated to compiler.EvalArith, so its typing and
// operation semantics are by construction the same rules the compiler
// folds with and the simulator executes with. The oracle runs threads
// sequentially (fork and forall bodies execute inline at the spawn
// site), so it is a valid reference only for race-free programs — which
// the progfuzz generator guarantees by writing disjoint locations from
// parallel constructs.
package oracle

import (
	"fmt"

	"pcoup/internal/compiler"
	"pcoup/internal/isa"
	"pcoup/internal/sexpr"
)

// MaxSteps bounds loop iterations so a non-terminating (or merely huge)
// program cannot pin the interpreter.
const MaxSteps = 10_000_000

type interp struct {
	decls *compiler.Declarations
	mem   map[string][]isa.Value
}

// Run parses and evaluates a program, returning the final contents of
// every declared global (hidden cells do not exist at this level).
func Run(src string) (map[string][]isa.Value, error) {
	forms, err := sexpr.Parse(src)
	if err != nil {
		return nil, err
	}
	return RunForms(forms)
}

// RunForms evaluates pre-parsed top-level forms.
func RunForms(forms []*sexpr.Node) (map[string][]isa.Value, error) {
	decls, err := compiler.Analyze(forms)
	if err != nil {
		return nil, err
	}
	o := &interp{decls: decls, mem: map[string][]isa.Value{}}
	for name, g := range decls.Globals {
		vals := make([]isa.Value, g.Size)
		if g.Float {
			for i := range vals {
				vals[i] = isa.Float(0)
			}
		}
		copy(vals, g.Init)
		o.mem[name] = vals
	}
	main := decls.Funcs["main"]
	if main == nil {
		return nil, fmt.Errorf("oracle: no main")
	}
	sc := &scope{vars: map[string]isa.Value{}, consts: map[string]isa.Value{}}
	if _, err := o.stmts(main.Body, sc, 0); err != nil {
		return nil, err
	}
	out := map[string][]isa.Value{}
	for name, vals := range o.mem {
		out[name] = vals
	}
	return out, nil
}

type scope struct {
	parent *scope
	vars   map[string]isa.Value
	consts map[string]isa.Value
}

func (s *scope) lookupVar(name string) (*scope, bool) {
	for sc := s; sc != nil; sc = sc.parent {
		if _, ok := sc.vars[name]; ok {
			return sc, true
		}
		if _, ok := sc.consts[name]; ok {
			return nil, false
		}
	}
	return nil, false
}

func (s *scope) lookupConst(name string) (isa.Value, bool) {
	for sc := s; sc != nil; sc = sc.parent {
		if v, ok := sc.consts[name]; ok {
			return v, true
		}
		if _, ok := sc.vars[name]; ok {
			return isa.Value{}, false
		}
	}
	return isa.Value{}, false
}

type returned struct{ val isa.Value }

func (o *interp) stmts(nodes []*sexpr.Node, sc *scope, depth int) (*returned, error) {
	for _, n := range nodes {
		ret, err := o.stmt(n, sc, depth)
		if err != nil {
			return nil, err
		}
		if ret != nil {
			return ret, nil
		}
	}
	return nil, nil
}

func (o *interp) stmt(n *sexpr.Node, sc *scope, depth int) (*returned, error) {
	if depth > compiler.MaxExpandDepth {
		return nil, fmt.Errorf("oracle: expansion too deep")
	}
	switch n.Head() {
	case "set":
		name := n.List[1].Sym
		v, err := o.expr(n.List[2], sc, depth)
		if err != nil {
			return nil, err
		}
		if owner, ok := sc.lookupVar(name); ok {
			old := owner.vars[name]
			if old.IsFloat && !v.IsFloat {
				v = isa.Float(v.AsFloat())
			}
			owner.vars[name] = v
			return nil, nil
		}
		if g, ok := o.decls.Globals[name]; ok {
			if g.Float && !v.IsFloat {
				v = isa.Float(v.AsFloat())
			}
			o.mem[name][0] = v
			return nil, nil
		}
		sc.vars[name] = v
		return nil, nil
	case "let":
		inner := &scope{parent: sc, vars: map[string]isa.Value{}, consts: map[string]isa.Value{}}
		for _, bind := range n.List[1].List {
			v, err := o.expr(bind.List[1], sc, depth)
			if err != nil {
				return nil, err
			}
			inner.vars[bind.List[0].Sym] = v
		}
		return o.stmts(n.List[2:], inner, depth)
	case "if":
		c, err := o.expr(n.List[1], sc, depth)
		if err != nil {
			return nil, err
		}
		if c.Truthy() {
			return o.stmt(n.List[2], sc, depth)
		}
		if len(n.List) == 4 {
			return o.stmt(n.List[3], sc, depth)
		}
		return nil, nil
	case "while":
		for steps := 0; ; steps++ {
			if steps > MaxSteps {
				return nil, fmt.Errorf("oracle: while did not terminate")
			}
			c, err := o.expr(n.List[1], sc, depth)
			if err != nil {
				return nil, err
			}
			if !c.Truthy() {
				return nil, nil
			}
			if ret, err := o.stmts(n.List[2:], sc, depth); err != nil || ret != nil {
				return ret, err
			}
		}
	case "for", "unroll", "forall-static", "forall":
		// All loop forms run sequentially in the oracle.
		head := n.List[1].List
		name := head[0].Sym
		lo, err := o.expr(head[1], sc, depth)
		if err != nil {
			return nil, err
		}
		hi, err := o.expr(head[2], sc, depth)
		if err != nil {
			return nil, err
		}
		step := int64(1)
		if len(head) == 4 {
			sv, err := o.expr(head[3], sc, depth)
			if err != nil {
				return nil, err
			}
			step = sv.AsInt()
			if step == 0 {
				return nil, fmt.Errorf("oracle: zero step")
			}
		}
		for i := lo.AsInt(); i < hi.AsInt(); i += step {
			inner := &scope{parent: sc, vars: map[string]isa.Value{}, consts: map[string]isa.Value{}}
			inner.vars[name] = isa.Int(i)
			if ret, err := o.stmts(n.List[2:], inner, depth); err != nil || ret != nil {
				return ret, err
			}
		}
		return nil, nil
	case "begin":
		return o.stmts(n.List[1:], sc, depth)
	case "aset":
		g, ok := o.decls.Globals[n.List[1].Sym]
		if !ok {
			return nil, fmt.Errorf("oracle: unknown global %q", n.List[1].Sym)
		}
		idx, err := o.expr(n.List[2], sc, depth)
		if err != nil {
			return nil, err
		}
		v, err := o.expr(n.List[3], sc, depth)
		if err != nil {
			return nil, err
		}
		if g.Float && !v.IsFloat {
			v = isa.Float(v.AsFloat())
		}
		i := idx.AsInt()
		if i < 0 || i >= g.Size {
			return nil, fmt.Errorf("oracle: %s[%d] out of range", g.Name, i)
		}
		o.mem[g.Name][i] = v
		return nil, nil
	case "fork":
		// Sequential execution of the forked body (race-free programs
		// only). Fork bodies see no parent locals.
		inner := &scope{vars: map[string]isa.Value{}, consts: flattenConsts(sc)}
		_, err := o.stmts(n.List[1:], inner, depth)
		return nil, err
	case "join":
		return nil, nil
	case "return":
		v, err := o.expr(n.List[1], sc, depth)
		if err != nil {
			return nil, err
		}
		return &returned{val: v}, nil
	default:
		if fd, ok := o.decls.Funcs[n.Head()]; ok {
			_, err := o.call(fd, n, sc, depth)
			return nil, err
		}
		return nil, fmt.Errorf("oracle: unknown statement %q", n.Head())
	}
}

func flattenConsts(sc *scope) map[string]isa.Value {
	out := map[string]isa.Value{}
	var walk func(*scope)
	walk = func(s *scope) {
		if s == nil {
			return
		}
		walk(s.parent)
		for k, v := range s.consts {
			out[k] = v
		}
		// Loop indices are vars in the oracle but compile-time constants
		// for unroll/forall-static; fork bodies may reference them.
		for k, v := range s.vars {
			out[k] = v
		}
	}
	walk(sc)
	return out
}

func (o *interp) call(fd *compiler.FuncDecl, n *sexpr.Node, sc *scope, depth int) (isa.Value, error) {
	if len(n.List)-1 != len(fd.Params) {
		return isa.Value{}, fmt.Errorf("oracle: %s arity", fd.Name)
	}
	inner := &scope{vars: map[string]isa.Value{}, consts: map[string]isa.Value{}}
	for i, p := range fd.Params {
		v, err := o.expr(n.List[i+1], sc, depth)
		if err != nil {
			return isa.Value{}, err
		}
		inner.vars[p] = v
	}
	ret, err := o.stmts(fd.Body, inner, depth+1)
	if err != nil {
		return isa.Value{}, err
	}
	if ret != nil {
		return ret.val, nil
	}
	return isa.Value{}, nil
}

func (o *interp) expr(n *sexpr.Node, sc *scope, depth int) (isa.Value, error) {
	switch n.Kind {
	case sexpr.KInt:
		return isa.Int(n.Int), nil
	case sexpr.KFloat:
		return isa.Float(n.Float), nil
	case sexpr.KSymbol:
		if owner, ok := sc.lookupVar(n.Sym); ok {
			return owner.vars[n.Sym], nil
		}
		if v, ok := sc.lookupConst(n.Sym); ok {
			return v, nil
		}
		if v, ok := o.decls.Consts[n.Sym]; ok {
			return v, nil
		}
		if g, ok := o.decls.Globals[n.Sym]; ok {
			if g.Size != 1 {
				return isa.Value{}, fmt.Errorf("oracle: array %q as value", n.Sym)
			}
			return o.mem[n.Sym][0], nil
		}
		return isa.Value{}, fmt.Errorf("oracle: unknown name %q", n.Sym)
	case sexpr.KList:
		switch n.Head() {
		case "aref":
			g, ok := o.decls.Globals[n.List[1].Sym]
			if !ok {
				return isa.Value{}, fmt.Errorf("oracle: unknown global %q", n.List[1].Sym)
			}
			idx, err := o.expr(n.List[2], sc, depth)
			if err != nil {
				return isa.Value{}, err
			}
			i := idx.AsInt()
			if i < 0 || i >= g.Size {
				return isa.Value{}, fmt.Errorf("oracle: %s[%d] out of range", g.Name, i)
			}
			return o.mem[g.Name][i], nil
		case "addr":
			g, ok := o.decls.Globals[n.List[1].Sym]
			if !ok {
				return isa.Value{}, fmt.Errorf("oracle: unknown global")
			}
			return isa.Int(g.Addr), nil
		case "float":
			v, err := o.expr(n.List[1], sc, depth)
			if err != nil {
				return isa.Value{}, err
			}
			return isa.Float(v.AsFloat()), nil
		case "int":
			v, err := o.expr(n.List[1], sc, depth)
			if err != nil {
				return isa.Value{}, err
			}
			return isa.Int(v.AsInt()), nil
		}
		if compiler.IsArithOp(n.Head()) {
			vals := make([]isa.Value, len(n.List)-1)
			for i, c := range n.List[1:] {
				v, err := o.expr(c, sc, depth)
				if err != nil {
					return isa.Value{}, err
				}
				vals[i] = v
			}
			return compiler.EvalArith(n, n.Head(), vals)
		}
		if fd, ok := o.decls.Funcs[n.Head()]; ok {
			return o.call(fd, n, sc, depth)
		}
	}
	return isa.Value{}, fmt.Errorf("oracle: bad expression %s", n)
}
