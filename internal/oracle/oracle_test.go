package oracle

import "testing"

// TestSanity pins the interpreter against a hand-computed program.
func TestSanity(t *testing.T) {
	src := `
(program p
  (global a (array int 4) (init 1 2 3 4))
  (global out (array int 4))
  (def (main)
    (set s 0)
    (for (i 0 4) (set s (+ s (aref a i))))
    (aset out 0 s)
    (if (> s 5) (aset out 1 1) (aset out 1 2))
    (unroll (k 0 3) (aset out 2 (+ (aref out 2) k)))
    (forall-static (i 0 4) (aset a i (* i i)))))`
	got, err := Run(src)
	if err != nil {
		t.Fatal(err)
	}
	if got["out"][0].AsInt() != 10 || got["out"][1].AsInt() != 1 || got["out"][2].AsInt() != 3 {
		t.Errorf("oracle out = %v", got["out"])
	}
	for i := int64(0); i < 4; i++ {
		if got["a"][i].AsInt() != i*i {
			t.Errorf("oracle a[%d] = %v", i, got["a"][i])
		}
	}
}

// TestProcedures exercises macro expansion, parameter binding, and
// (return ...), plus fork's sequential reference semantics.
func TestProcedures(t *testing.T) {
	src := `
(program p
  (global out (array int 4))
  (def (sq x) (return (* x x)))
  (def (store i v) (aset out i v))
  (def (main)
    (aset out 0 (sq 7))
    (store 1 (+ (sq 2) 1))
    (fork (aset out 2 42))
    (join)
    (aset out 3 (aref out 2))))`
	got, err := Run(src)
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{49, 5, 42, 42}
	for i, w := range want {
		if got["out"][i].AsInt() != w {
			t.Errorf("out[%d] = %v, want %d", i, got["out"][i], w)
		}
	}
}

// TestNonTermination makes sure a spinning while loop is cut off rather
// than pinning the interpreter.
func TestNonTermination(t *testing.T) {
	src := `
(program p
  (global out int)
  (def (main)
    (set x 1)
    (while (> x 0) (set x (+ x 1)))))`
	if _, err := Run(src); err == nil {
		t.Fatal("non-terminating program did not error")
	}
}
