package interconnect

import (
	"testing"

	"pcoup/internal/machine"
)

// grant runs one request against a fresh-cycle arbiter state.
func grants(a *Arbiter, reqs []Request) []bool {
	out := make([]bool, len(reqs))
	for i, r := range reqs {
		out[i] = a.TryGrant(r)
	}
	return out
}

func TestFullGrantsEverything(t *testing.T) {
	a := New(machine.Full, 4)
	a.BeginCycle(0)
	for i := 0; i < 100; i++ {
		if !a.TryGrant(Request{SrcCluster: i % 4, DstCluster: (i + 1) % 4}) {
			t.Fatal("full interconnect refused a write")
		}
	}
}

func TestTriPortCapacities(t *testing.T) {
	a := New(machine.TriPort, 4)
	a.BeginCycle(0)
	// One local write per cycle per file.
	if !a.TryGrant(Request{SrcCluster: 0, DstCluster: 0}) {
		t.Error("first local write refused")
	}
	if a.TryGrant(Request{SrcCluster: 0, DstCluster: 0}) {
		t.Error("second local write granted (one local port)")
	}
	// Two remote writes per cycle per file.
	if !a.TryGrant(Request{SrcCluster: 1, DstCluster: 0}) || !a.TryGrant(Request{SrcCluster: 2, DstCluster: 0}) {
		t.Error("remote writes refused")
	}
	if a.TryGrant(Request{SrcCluster: 3, DstCluster: 0}) {
		t.Error("third remote write granted (two global ports)")
	}
	// Other clusters unaffected.
	if !a.TryGrant(Request{SrcCluster: 0, DstCluster: 1}) {
		t.Error("write to another file refused")
	}
	// New cycle resets capacity.
	a.BeginCycle(0)
	if !a.TryGrant(Request{SrcCluster: 0, DstCluster: 0}) {
		t.Error("capacity not reset by BeginCycle")
	}
}

func TestDualPortCapacities(t *testing.T) {
	a := New(machine.DualPort, 4)
	a.BeginCycle(0)
	got := grants(a, []Request{
		{0, 0}, {0, 0}, // local: 1 allowed
		{1, 0}, {2, 0}, // remote: 1 allowed
	})
	want := []bool{true, false, true, false}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("dual-port grant %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestSinglePortCapacities(t *testing.T) {
	a := New(machine.SinglePort, 4)
	a.BeginCycle(0)
	// One write total per file per cycle, local or remote.
	if !a.TryGrant(Request{SrcCluster: 1, DstCluster: 0}) {
		t.Error("first write refused")
	}
	if a.TryGrant(Request{SrcCluster: 0, DstCluster: 0}) {
		t.Error("second write granted on single port")
	}
	if !a.TryGrant(Request{SrcCluster: 0, DstCluster: 1}) {
		t.Error("independent file refused (ports are per-file)")
	}
}

func TestSharedBusCapacities(t *testing.T) {
	a := New(machine.SharedBus, 4)
	a.BeginCycle(0)
	// Local writes use per-file ports.
	if !a.TryGrant(Request{SrcCluster: 0, DstCluster: 0}) || !a.TryGrant(Request{SrcCluster: 1, DstCluster: 1}) {
		t.Error("local writes refused")
	}
	// One remote write in the whole machine per cycle.
	if !a.TryGrant(Request{SrcCluster: 0, DstCluster: 2}) {
		t.Error("first remote write refused")
	}
	if a.TryGrant(Request{SrcCluster: 1, DstCluster: 3}) {
		t.Error("second remote write granted on the shared bus")
	}
	a.BeginCycle(0)
	if !a.TryGrant(Request{SrcCluster: 1, DstCluster: 3}) {
		t.Error("bus not released at cycle start")
	}
}

func TestPortCostOrdering(t *testing.T) {
	// The area proxy must rank schemes: Full > TriPort > DualPort >
	// SinglePort, and SharedBus cheapest in buses.
	full := PortCost(machine.Full, 4, 3)
	tri := PortCost(machine.TriPort, 4, 3)
	dual := PortCost(machine.DualPort, 4, 3)
	single := PortCost(machine.SinglePort, 4, 3)
	if !(full > tri && tri > dual && dual > single) {
		t.Errorf("cost ordering: full=%d tri=%d dual=%d single=%d", full, tri, dual, single)
	}
	// Section 6 of the paper: Tri-Port needs roughly a quarter of the
	// fully connected area in a four-cluster system.
	ratio := float64(tri) / float64(full)
	if ratio > 0.5 {
		t.Errorf("tri-port/full area ratio = %.2f, expected well under 0.5", ratio)
	}
}
