// Package interconnect models the communication network between function
// units and register files. The five schemes of the paper's "Restricting
// Communication" experiment (Figure 6) are expressed as per-cycle
// write-port and bus capacity constraints: every result writeback claims a
// write port on the destination cluster's register file and, when the
// destination is remote, a bus. Writebacks that cannot be granted retry on
// a later cycle.
package interconnect

import "pcoup/internal/machine"

// Request is one register-file write wanting to complete this cycle.
type Request struct {
	SrcCluster int
	DstCluster int
}

// Stats accumulates arbitration outcomes over a run: how often register
// writes were granted immediately and how often each destination
// cluster's ports/buses turned one away (the writeback-contention signal
// consumed by the simulator's stall attribution).
type Stats struct {
	Grants  int64
	Rejects int64
	// RejectsByCluster counts rejections per destination cluster.
	RejectsByCluster []int64
	// OutageRejects counts rejections caused by injected write-port
	// outage windows rather than capacity (subset of Rejects).
	OutageRejects int64
}

// Arbiter grants writeback requests subject to the configured scheme's
// port and bus capacities. A fresh grant round starts each cycle.
type Arbiter struct {
	kind        machine.InterconnectKind
	numClusters int

	localUsed  []int
	remoteUsed []int
	totalUsed  []int
	sharedBus  int

	// outage, when set, reports whether a destination cluster's write
	// ports are inside an injected outage window this cycle; cycle is
	// maintained by BeginCycle.
	outage func(cluster int, cycle int64) bool
	cycle  int64

	grants        int64
	rejects       []int64
	outageRejects int64
}

// New creates an arbiter for the given scheme and cluster count.
func New(kind machine.InterconnectKind, numClusters int) *Arbiter {
	return &Arbiter{
		kind:        kind,
		numClusters: numClusters,
		localUsed:   make([]int, numClusters),
		remoteUsed:  make([]int, numClusters),
		totalUsed:   make([]int, numClusters),
		rejects:     make([]int64, numClusters),
	}
}

// Stats returns a copy of the accumulated grant/reject counters.
func (a *Arbiter) Stats() Stats {
	s := Stats{Grants: a.grants, RejectsByCluster: append([]int64(nil), a.rejects...), OutageRejects: a.outageRejects}
	for _, r := range a.rejects {
		s.Rejects += r
	}
	return s
}

// RestoreStats resets the accumulated counters from a snapshot
// (checkpoint restore).
func (a *Arbiter) RestoreStats(s Stats) {
	a.grants = s.Grants
	a.outageRejects = s.OutageRejects
	a.rejects = make([]int64, a.numClusters)
	copy(a.rejects, s.RejectsByCluster)
}

// SetOutage installs the fault-injection probe consulted per grant: a
// destination cluster whose probe reports true rejects every writeback
// that cycle. Pass nil to disable.
func (a *Arbiter) SetOutage(f func(cluster int, cycle int64) bool) { a.outage = f }

// Kind returns the arbitration scheme.
func (a *Arbiter) Kind() machine.InterconnectKind { return a.kind }

// BeginCycle resets all port and bus occupancy for a new cycle. The
// cycle number feeds the injected-outage probe.
func (a *Arbiter) BeginCycle(cycle int64) {
	for i := range a.localUsed {
		a.localUsed[i] = 0
		a.remoteUsed[i] = 0
		a.totalUsed[i] = 0
	}
	a.sharedBus = 0
	a.cycle = cycle
}

// TryGrant attempts to reserve the ports/buses needed by req. Callers
// present requests in priority order; a granted request consumes capacity
// immediately. It returns false when the request must retry next cycle.
func (a *Arbiter) TryGrant(req Request) bool {
	if a.outage != nil && a.outage(req.DstCluster, a.cycle) {
		a.rejects[req.DstCluster]++
		a.outageRejects++
		return false
	}
	ok := a.tryGrant(req)
	if ok {
		a.grants++
	} else {
		a.rejects[req.DstCluster]++
	}
	return ok
}

func (a *Arbiter) tryGrant(req Request) bool {
	local := req.SrcCluster == req.DstCluster
	d := req.DstCluster
	switch a.kind {
	case machine.Full:
		return true
	case machine.TriPort:
		if local {
			if a.localUsed[d] >= 1 {
				return false
			}
			a.localUsed[d]++
			return true
		}
		if a.remoteUsed[d] >= 2 {
			return false
		}
		a.remoteUsed[d]++
		return true
	case machine.DualPort:
		if local {
			if a.localUsed[d] >= 1 {
				return false
			}
			a.localUsed[d]++
			return true
		}
		if a.remoteUsed[d] >= 1 {
			return false
		}
		a.remoteUsed[d]++
		return true
	case machine.SinglePort:
		if a.totalUsed[d] >= 1 {
			return false
		}
		a.totalUsed[d]++
		return true
	case machine.SharedBus:
		if local {
			if a.localUsed[d] >= 1 {
				return false
			}
			a.localUsed[d]++
			return true
		}
		if a.sharedBus >= 1 || a.remoteUsed[d] >= 1 {
			return false
		}
		a.sharedBus++
		a.remoteUsed[d]++
		return true
	}
	return true
}

// PortCost returns a relative area estimate for the scheme in a machine of
// numClusters clusters with unitsPerCluster units each: the number of
// register write ports plus buses. Used by the feasibility discussion
// (Section 6 of the paper claims Tri-Port needs ~28% of the fully
// connected area in a four-cluster system).
func PortCost(kind machine.InterconnectKind, numClusters, unitsPerCluster int) int {
	switch kind {
	case machine.Full:
		// Every unit can write every file: ports scale with units x clusters.
		return numClusters * (numClusters*unitsPerCluster + unitsPerCluster)
	case machine.TriPort:
		return numClusters * (3 + 2) // 3 ports + 2 global buses per cluster
	case machine.DualPort:
		return numClusters * (2 + 1)
	case machine.SinglePort:
		return numClusters * (1 + 1)
	case machine.SharedBus:
		return numClusters*2 + 1
	}
	return 0
}
