// Package pcoup is the public API of the processor-coupling toolkit: a
// reproduction of Keckler & Dally, "Processor Coupling: Integrating
// Compile Time and Runtime Scheduling for Parallelism" (ISCA 1992).
//
// The toolkit has three layers, all configurable from this package:
//
//   - Machine descriptions (clusters of function units, interconnect
//     schemes, memory models): Baseline, MixMachine, LoadMachine.
//   - A compiler for the paper's Lisp-syntax source language with static
//     critical-path scheduling onto wide instruction words: Compile.
//   - A multithreaded, cycle-accurate node simulator with presence-bit
//     synchronization and cycle-by-cycle function-unit arbitration:
//     Simulate, NewSimulator.
//
// The paper's benchmarks and every table/figure of its evaluation are
// available through GenerateBenchmark and the experiments drivers (see
// cmd/pcbench).
package pcoup

import (
	"io"

	"pcoup/internal/bench"
	"pcoup/internal/compiler"
	"pcoup/internal/isa"
	"pcoup/internal/machine"
	"pcoup/internal/sim"
)

// Machine configuration types.
type (
	// MachineConfig describes a processor-coupled node: clusters,
	// interconnect, memory system, and arbitration policy.
	MachineConfig = machine.Config
	// ClusterSpec describes one cluster of function units.
	ClusterSpec = machine.ClusterSpec
	// UnitSpec describes one function unit.
	UnitSpec = machine.UnitSpec
	// UnitKind is a function unit class (IU, FPU, MEM, BR).
	UnitKind = machine.UnitKind
	// InterconnectKind selects the inter-cluster communication scheme.
	InterconnectKind = machine.InterconnectKind
	// MemoryModel is the statistical memory system description.
	MemoryModel = machine.MemoryModel
)

// Function unit classes.
const (
	IU  = machine.IU
	FPU = machine.FPU
	MEM = machine.MEM
	BR  = machine.BR
)

// Interconnect schemes (Figure 6 of the paper).
const (
	Full       = machine.Full
	TriPort    = machine.TriPort
	DualPort   = machine.DualPort
	SinglePort = machine.SinglePort
	SharedBus  = machine.SharedBus
)

// Memory model presets (Figure 7 of the paper).
var (
	MemMin = machine.MemMin
	Mem1   = machine.Mem1
	Mem2   = machine.Mem2
)

// Baseline returns the paper's baseline machine: four arithmetic
// clusters (IU+FPU+MEM each) plus two branch clusters, single-cycle
// units, full interconnect, single-cycle memory.
func Baseline() *MachineConfig { return machine.Baseline() }

// MixMachine returns a machine with the given numbers of integer and
// floating-point units, four memory units, and one branch unit (the
// Figure 8 sweep).
func MixMachine(ius, fpus int) *MachineConfig { return machine.Mix(ius, fpus) }

// LoadMachine reads a machine configuration from a JSON file.
func LoadMachine(path string) (*MachineConfig, error) { return machine.Load(path) }

// Compiler types.
type (
	// Program is a compiled program: wide-instruction-word code segments
	// plus the initial memory image.
	Program = isa.Program
	// CompileMode selects the cluster restriction applied to threads.
	CompileMode = compiler.Mode
	// Diagnostics carries per-segment schedule statistics.
	Diagnostics = compiler.Diagnostics
)

// Compile modes.
const (
	// Unrestricted lets each thread use every function unit (STS, Ideal,
	// Coupled).
	Unrestricted = compiler.Unrestricted
	// SingleCluster pins each thread to one arithmetic cluster (SEQ,
	// TPE).
	SingleCluster = compiler.SingleCluster
)

// Compile translates source text (the paper's Lisp-syntax language) into
// a program for the given machine.
func Compile(src string, cfg *MachineConfig, mode CompileMode) (*Program, *Diagnostics, error) {
	return compiler.Compile(src, cfg, compiler.Options{Mode: mode})
}

// WriteAssembly serializes a compiled program in textual assembly form.
func WriteAssembly(w io.Writer, p *Program) error { return isa.WriteText(w, p) }

// ParseAssembly reads a program previously written by WriteAssembly.
func ParseAssembly(r io.Reader) (*Program, error) { return isa.ParseText(r) }

// Simulator types.
type (
	// Simulator executes one program on one machine.
	Simulator = sim.Sim
	// Result summarizes a simulation run: cycles, per-unit operation
	// counts, per-thread statistics, and memory system counters.
	Result = sim.Result
	// Value is one machine word (tagged int or float).
	Value = isa.Value
)

// NewSimulator prepares a simulation of prog on cfg.
func NewSimulator(cfg *MachineConfig, prog *Program) (*Simulator, error) {
	return sim.New(cfg, prog)
}

// Simulate compiles nothing and runs everything: it executes prog on cfg
// to completion and returns the run statistics.
func Simulate(cfg *MachineConfig, prog *Program) (*Result, error) {
	s, err := sim.New(cfg, prog)
	if err != nil {
		return nil, err
	}
	return s.Run(0)
}

// PeekGlobal reads one word of a finished simulator's memory by global
// (data segment) name and element offset.
func PeekGlobal(s *Simulator, prog *Program, global string, off int64) (Value, bool) {
	for _, d := range prog.Data {
		if d.Name == global {
			v, _ := s.Memory().Peek(d.Addr + off)
			return v, true
		}
	}
	return Value{}, false
}

// Benchmark types.
type (
	// Benchmark is one generated workload with its result checker.
	Benchmark = bench.Benchmark
	// SourceKind selects a benchmark's source variant.
	SourceKind = bench.SourceKind
)

// Benchmark source variants.
const (
	// SequentialSource is the single-threaded program (SEQ/STS).
	SequentialSource = bench.Sequential
	// ThreadedSource is the explicitly parallel program (TPE/Coupled).
	ThreadedSource = bench.Threaded
	// IdealSource is the fully unrolled program (Ideal).
	IdealSource = bench.Ideal
)

// GenerateBenchmark produces one of the paper's benchmarks ("matrix",
// "fft", "lud", "model", or "modelq") in the requested variant at the
// paper's problem size.
func GenerateBenchmark(name string, kind SourceKind) (*Benchmark, error) {
	return bench.Get(name, kind)
}

// GenerateBenchmarkN produces a benchmark at a chosen problem size
// (matrix N, fft points, lud mesh side, model device count).
func GenerateBenchmarkN(name string, kind SourceKind, size int) (*Benchmark, error) {
	return bench.GetN(name, kind, size)
}

// BenchmarkNames lists the paper's benchmark suite.
func BenchmarkNames() []string { return bench.Names() }
