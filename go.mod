module pcoup

go 1.22
